// Package poolescape flags sync.Pool values that outlive the function
// that got them. A pooled object may be handed back to the pool (Put)
// and re-used by any goroutine the moment the getter stops using it, so
// storing it into a struct field, a global, a map/slice element,
// returning it, or capturing it in a spawned goroutine creates an
// aliasing window where two owners mutate the same object.
//
// Taint is intraprocedural and deliberately shallow: it follows direct
// aliases (x := pool.Get().(*T); y := x; &x), type assertions, and the
// append builtin — not arbitrary function calls. A value laundered
// through a helper's return value is out of scope; the repo convention
// is that helpers either Put before returning or document the handoff
// with //pphcr:allow poolescape.
package poolescape

import (
	"go/ast"
	"go/types"

	"pphcr/internal/analysis"
)

// Analyzer is the poolescape analysis.
var Analyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc: "sync.Pool values must not be stored into fields or globals, " +
		"returned, or captured by goroutines that outlive the Put",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

type state struct {
	pass    *analysis.Pass
	tainted map[*types.Var]bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	st := &state{pass: pass, tainted: make(map[*types.Var]bool)}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// Handled at the GoStmt site; a plain literal runs on this
			// stack and may use the pooled value freely.
			return false
		case *ast.AssignStmt:
			st.assign(x)
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if st.taintedExpr(r) {
					pass.Reportf(r.Pos(),
						"pooled value returned from %s; the caller outlives this function's claim on it",
						fd.Name.Name)
				}
			}
		case *ast.GoStmt:
			st.checkGo(x)
			return false
		case *ast.DeclStmt:
			if gd, ok := x.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						st.declare(vs)
					}
				}
			}
		}
		return true
	})
}

// assign propagates taint through x := expr chains and flags stores
// that let the pooled value escape the function.
func (s *state) assign(a *ast.AssignStmt) {
	for i, lhs := range a.Lhs {
		var rhs ast.Expr
		if len(a.Rhs) == len(a.Lhs) {
			rhs = a.Rhs[i]
		} else if len(a.Rhs) == 1 {
			rhs = a.Rhs[0] // multi-value: v, ok := pool.Get().(*T) etc.
		}
		if rhs == nil || !s.taintedExpr(rhs) {
			continue
		}
		switch l := analysis.Unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			if v := s.objOf(l); v != nil {
				if v.Parent() == s.pass.Pkg.Scope() {
					s.pass.Reportf(a.Pos(),
						"pooled value stored into package variable %s; it escapes the Get/Put window", l.Name)
					continue
				}
				s.tainted[v] = true
			}
		case *ast.SelectorExpr:
			s.pass.Reportf(a.Pos(),
				"pooled value stored into field %s; it escapes the Get/Put window", render(l))
		case *ast.IndexExpr:
			s.pass.Reportf(a.Pos(),
				"pooled value stored into element %s; it escapes the Get/Put window", render(l))
		case *ast.StarExpr:
			// *p = pooled: writing through a pointer whose own
			// provenance is untracked — out of scope.
		}
	}
}

// declare handles var v = expr declarations.
func (s *state) declare(vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		if s.taintedExpr(vs.Values[i]) {
			if v, ok := s.pass.TypesInfo.Defs[name].(*types.Var); ok {
				s.tainted[v] = true
			}
		}
	}
}

// checkGo reports tainted variables referenced inside a go'd literal.
func (s *state) checkGo(g *ast.GoStmt) {
	fl, ok := analysis.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		// go someFunc(tainted): handing the value to a new goroutine.
		for _, arg := range g.Call.Args {
			if s.taintedExpr(arg) {
				s.pass.Reportf(arg.Pos(),
					"pooled value passed to a spawned goroutine; it outlives this function's claim on it")
			}
		}
		return
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := s.objOf(id); v != nil && s.tainted[v] {
				s.pass.Reportf(id.Pos(),
					"pooled value %s captured by a spawned goroutine; it outlives this function's claim on it", id.Name)
			}
		}
		return true
	})
}

// taintedExpr reports whether e denotes a pooled value: a direct
// sync.Pool Get call, a type assertion over one, an alias of a tainted
// variable, or an append involving one.
func (s *state) taintedExpr(e ast.Expr) bool {
	switch x := analysis.Unparen(e).(type) {
	case *ast.Ident:
		v := s.objOf(x)
		return v != nil && s.tainted[v]
	case *ast.UnaryExpr:
		return s.taintedExpr(x.X)
	case *ast.TypeAssertExpr:
		return s.taintedExpr(x.X)
	case *ast.CallExpr:
		if isPoolGet(s.pass, x) {
			return true
		}
		if id, ok := analysis.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := s.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				for _, arg := range x.Args {
					if s.taintedExpr(arg) {
						return true
					}
				}
			}
		}
		return false
	default:
		return false
	}
}

func (s *state) objOf(id *ast.Ident) *types.Var {
	if v, ok := s.pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := s.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// isPoolGet matches (expr of type sync.Pool).Get().
func isPoolGet(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, recv, ok := analysis.CalleeMethod(call)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	pkg, typ, ok := analysis.NamedOwner(pass.TypesInfo.TypeOf(recv))
	return ok && pkg == "sync" && typ == "Pool"
}

// render prints a selector/index chain for the message.
func render(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return render(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return render(x.X) + "[...]"
	case *ast.ParenExpr:
		return render(x.X)
	case *ast.StarExpr:
		return "*" + render(x.X)
	default:
		return "expression"
	}
}
