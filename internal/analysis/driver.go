package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
)

// Finding is one reported, unsuppressed diagnostic — the unit of
// pphcr-vet's text and JSON output.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the conventional file:line:col: analyzer: message form
// with the file path relative to the current directory when possible.
func (f Finding) String() string {
	file := f.File
	if rel, err := filepath.Rel(".", file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		file = rel
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s", file, f.Line, f.Col, f.Analyzer, f.Message)
}

func newFinding(fset *token.FileSet, analyzer string, pos token.Pos, format string, args ...any) Finding {
	p := fset.Position(pos)
	return Finding{
		Analyzer: analyzer,
		File:     p.Filename,
		Line:     p.Line,
		Col:      p.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// RunAnalyzers executes every analyzer on every package, applies the
// //pphcr:allow suppressions, lints the suppression comments, and
// returns the surviving findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var out []Finding
	for _, pkg := range pkgs {
		allows, lint := collectAllows(pkg.Fset, pkg.Files, known)
		out = append(out, lint...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			var diags []Diagnostic
			pass.report = func(d Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
			for _, d := range diags {
				f := newFinding(pkg.Fset, a.Name, d.Pos, "%s", d.Message)
				if !suppressed(f, allows) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}
