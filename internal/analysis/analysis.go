// Package analysis is the repo's static-analysis framework: a minimal,
// dependency-free re-implementation of the golang.org/x/tools
// go/analysis driver shape (Analyzer, Pass, Diagnostic) plus a package
// loader built on `go list -export` and the standard library's
// go/types gc importer.
//
// The framework exists to make the concurrency invariants of PR 4/5 —
// lock ordering, apply+emit-under-shard-lock, atomic access
// discipline, pool object lifecycles, no-copy cacheline structs —
// compiler-enforced instead of prose-enforced: the five analyzers under
// internal/analysis/* encode them, cmd/pphcr-vet composes them into a
// multichecker, and CI runs the suite as a hard gate. See
// docs/analysis.md for the invariant catalogue and the
// `//pphcr:allow` suppression syntax.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant check. Run receives a fully
// type-checked package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //pphcr:allow suppression comments. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description printed by pphcr-vet -help
	// and quoted in docs/analysis.md.
	Doc string
	// Run executes the check on one package.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked state to an
// analyzer, mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
