// Package nopadlockcopy flags by-value copies of structs that must
// stay put: structs that (transitively) contain a sync primitive, a
// typed sync/atomic value, or a blank cacheline-padding field
// (`_ [N]byte`). Copying a mutex forks its state; copying an atomic
// field tears its publication contract; copying a padded struct
// silently discards the false-sharing layout the padding paid for —
// the copy lands wherever the destination is, re-sharing the line.
//
// go vet's copylocks already rejects copies of Locker-bearing values;
// this check is the repo-aware superset that also covers pad-only
// structs (obs.Histogram-style counter blocks, barrier/WAL stripes)
// and reports the reason the type is pinned.
//
// Flagged copy sites: assignments and declarations whose source is an
// existing value (identifier, field, element, or dereference), call
// arguments, return values, by-value range over a slice or array of
// pinned structs, and by-value receivers, parameters, and results in
// function signatures.
package nopadlockcopy

import (
	"go/ast"
	"go/types"

	"pphcr/internal/analysis"
)

// Analyzer is the nopadlockcopy analysis.
var Analyzer = &analysis.Analyzer{
	Name: "nopadlockcopy",
	Doc: "cacheline-padded, mutex-bearing, or atomic-bearing structs " +
		"must never be copied by value",
	Run: run,
}

type checker struct {
	pass *analysis.Pass
	memo map[types.Type]string
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, memo: make(map[types.Type]string)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				c.checkSignature(x)
			case *ast.AssignStmt:
				c.checkAssign(x)
			case *ast.ValueSpec:
				for _, v := range x.Values {
					c.checkValueExpr(v, "assigned")
				}
			case *ast.CallExpr:
				for _, a := range x.Args {
					c.checkValueExpr(a, "passed")
				}
			case *ast.ReturnStmt:
				for _, r := range x.Results {
					c.checkValueExpr(r, "returned")
				}
			case *ast.RangeStmt:
				c.checkRange(x)
			}
			return true
		})
	}
	return nil
}

// checkSignature flags by-value receivers, parameters, and results of
// pinned struct types.
func (c *checker) checkSignature(fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, role string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := c.pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if why := c.pinned(t); why != "" {
				c.pass.Reportf(field.Type.Pos(),
					"%s takes %s by value as a %s; it contains %s and must be passed by pointer",
					fd.Name.Name, c.typeName(t), role, why)
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
	check(fd.Type.Results, "result")
}

func (c *checker) checkAssign(a *ast.AssignStmt) {
	if len(a.Lhs) == 1 {
		if id, ok := analysis.Unparen(a.Lhs[0]).(*ast.Ident); ok && id.Name == "_" {
			return // _ = x is a use marker, not a live copy
		}
	}
	for _, r := range a.Rhs {
		c.checkValueExpr(r, "assigned")
	}
}

// checkValueExpr flags e when it reads an existing pinned value out of
// a variable, field, element, or pointer — the copy sites. Composite
// literals and call results are construction, not copies of a value
// someone else may hold a pointer into.
func (c *checker) checkValueExpr(e ast.Expr, verb string) {
	switch analysis.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return
	}
	if why := c.pinned(t); why != "" {
		c.pass.Reportf(e.Pos(),
			"%s %s by value; it contains %s and must be handled by pointer",
			c.typeName(t), verb, why)
	}
}

// checkRange flags `for _, v := range xs` when the element type is
// pinned: every iteration copies one element into v.
func (c *checker) checkRange(r *ast.RangeStmt) {
	if r.Value == nil {
		return
	}
	if id, ok := r.Value.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	t := c.pass.TypesInfo.TypeOf(r.Value)
	if t == nil {
		return
	}
	if why := c.pinned(t); why != "" {
		c.pass.Reportf(r.Value.Pos(),
			"ranging copies %s elements by value; they contain %s — range over indices instead",
			c.typeName(t), why)
	}
}

// pinned returns the reason t must not be copied, or "".
func (c *checker) pinned(t types.Type) string {
	if why, ok := c.memo[t]; ok {
		return why
	}
	c.memo[t] = "" // cut self-recursion; structs cannot contain themselves by value anyway
	why := c.reason(t)
	c.memo[t] = why
	return why
}

func (c *checker) reason(t types.Type) string {
	switch u := t.(type) {
	case *types.Named:
		obj := u.Obj()
		if obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				if obj.Name() != "Locker" {
					return "a sync." + obj.Name()
				}
				return ""
			case "sync/atomic":
				return "an atomic." + obj.Name()
			}
		}
		return c.pinned(u.Underlying())
	case *types.Array:
		return c.pinned(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if f.Name() == "_" {
				if arr, ok := f.Type().Underlying().(*types.Array); ok {
					if b, ok := arr.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
						return "cacheline padding"
					}
				}
				continue
			}
			if why := c.pinned(f.Type()); why != "" {
				return why
			}
		}
	}
	return ""
}

func (c *checker) typeName(t types.Type) string {
	if n, ok := t.(*types.Named); ok && n.Obj() != nil {
		return n.Obj().Name()
	}
	return "struct"
}
