// Package padded exercises nopadlockcopy: padded, mutex-bearing, and
// atomic-bearing structs must move by pointer.
package padded

import (
	"sync"
	"sync/atomic"
)

// stripe is a pad-only struct — no sync primitive, so go vet's
// copylocks would let a copy through; the padding is the point.
type stripe struct {
	count int64
	_     [56]byte
}

// guarded carries a mutex.
type guarded struct {
	mu sync.Mutex
	n  int
}

// counters carries typed atomics.
type counters struct {
	hits atomic.Int64
}

// wrapper embeds a pinned struct by value and inherits the pin.
type wrapper struct {
	s stripe
}

// badAssign copies an existing stripe out of a slice element.
func badAssign(xs []stripe) stripe { // want `badAssign takes stripe by value as a result`
	x := xs[0] // want `stripe assigned by value; it contains cacheline padding`
	return x   // want `stripe returned by value; it contains cacheline padding`
}

// badDeref copies through a pointer.
func badDeref(p *guarded) {
	g := *p // want `guarded assigned by value; it contains a sync\.Mutex`
	_ = g.n
}

// badParam declares a by-value parameter of a pinned type.
func badParam(c counters) int64 { // want `badParam takes counters by value as a parameter; it contains an atomic\.Int64`
	return c.hits.Load()
}

// badReceiver declares a by-value receiver.
func (w wrapper) badReceiver() {} // want `badReceiver takes wrapper by value as a receiver; it contains cacheline padding`

// badRange copies every element while iterating.
func badRange(xs []stripe) int64 {
	var total int64
	for _, s := range xs { // want `ranging copies stripe elements by value; they contain cacheline padding`
		total += s.count
	}
	return total
}

// badCallArg passes a pinned value into a call by value.
func badCallArg(g guarded) { // want `badCallArg takes guarded by value as a parameter; it contains a sync\.Mutex`
	sink(g) // want `guarded passed by value; it contains a sync\.Mutex`
}

func sink(v interface{}) { _ = v }

// goodPointer moves everything by pointer; field access through an
// index expression is not a copy of the struct.
func goodPointer(xs []stripe, w *wrapper) int64 {
	total := xs[0].count
	for i := range xs {
		total += xs[i].count
	}
	total += w.s.count
	return total
}

// goodConstruct builds fresh values; construction is not a copy.
func goodConstruct() *stripe {
	s := stripe{count: 1}
	return &s
}

// allowedCopy documents a sanctioned copy: the value is still private
// to its constructor, so no sharing exists yet.
func allowedCopy(proto *stripe) *stripe {
	//pphcr:allow nopadlockcopy value not yet published; constructor-local copy of a template
	s := *proto
	return &s
}
