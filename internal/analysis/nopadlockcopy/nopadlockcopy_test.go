package nopadlockcopy_test

import (
	"testing"

	"pphcr/internal/analysis/analysistest"
	"pphcr/internal/analysis/nopadlockcopy"
)

func TestNoPadLockCopy(t *testing.T) {
	analysistest.Run(t, "testdata", nopadlockcopy.Analyzer, "padded")
}
