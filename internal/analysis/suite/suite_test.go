package suite_test

import (
	"os"
	"path/filepath"
	"testing"

	"pphcr/internal/analysis"
	"pphcr/internal/analysis/suite"
)

// TestRepoClean runs the full pphcr-vet suite over the module and
// requires zero findings — the same gate CI applies. A new true
// positive must be fixed; a new intentional exception must carry a
// //pphcr:allow with its reason.
func TestRepoClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.RunAnalyzers(pkgs, suite.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
