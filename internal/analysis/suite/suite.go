// Package suite assembles the pphcr-vet analyzer set. cmd/pphcr-vet
// and the repo-wide regression test share this one list so CI and the
// tests can never drift apart.
package suite

import (
	"pphcr/internal/analysis"
	"pphcr/internal/analysis/atomicfield"
	"pphcr/internal/analysis/lockorder"
	"pphcr/internal/analysis/mutateemit"
	"pphcr/internal/analysis/nopadlockcopy"
	"pphcr/internal/analysis/poolescape"
)

// Analyzers returns the full pphcr-vet suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockorder.Analyzer,
		atomicfield.Analyzer,
		poolescape.Analyzer,
		mutateemit.Analyzer,
		nopadlockcopy.Analyzer,
	}
}
