package atomicfield_test

import (
	"testing"

	"pphcr/internal/analysis/analysistest"
	"pphcr/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer, "counters")
}
