// Package atomicfield enforces all-or-nothing atomic discipline: a
// variable that is accessed through sync/atomic anywhere in the package
// must be accessed through sync/atomic everywhere. A plain read of a
// counter that other goroutines bump with atomic.AddInt64 is a data
// race even when the plain access sits under some unrelated mutex —
// the mutex orders nothing against the atomic writers.
//
// The analyzer collects every variable whose address is passed to a
// package-level sync/atomic function (methods of the typed atomics —
// atomic.Int64 and friends — are safe by construction and ignored),
// then flags every other appearance of that variable. Taking the
// variable's address (&x.f) is not flagged: that is how the atomic
// helpers themselves receive it, and a pointer never constitutes a
// plain read. Composite-literal keys are also exempt — zero-value
// construction happens before the value is shared.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"pphcr/internal/analysis"
)

// Analyzer is the atomicfield analysis.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "variables touched via sync/atomic must be accessed atomically " +
		"everywhere; plain access races even under an unrelated mutex",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: every variable whose address feeds a sync/atomic call.
	atomicVars := make(map[*types.Var]token.Pos)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isAtomicFn(pass, call) {
				return true
			}
			un, ok := analysis.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			if v := resolveVar(pass, un.X); v != nil {
				if _, seen := atomicVars[v]; !seen {
					atomicVars[v] = call.Pos()
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Pass 2: flag plain appearances of those variables.
	for _, f := range pass.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			firstAtomic, tracked := atomicVars[v]
			if !tracked {
				return true
			}
			// The effective node is the selector when the ident is its
			// field part.
			var node ast.Node = id
			if sel, ok := parents[id].(*ast.SelectorExpr); ok && sel.Sel == id {
				node = sel
			}
			p := skipParens(parents, node)
			switch pn := p.(type) {
			case *ast.UnaryExpr:
				if pn.Op == token.AND {
					return true // address-taken: the atomic access path
				}
			case *ast.KeyValueExpr:
				if pn.Key == node {
					return true // composite-literal construction
				}
			case *ast.SelectorExpr:
				if pn.X != node {
					return true // ident is the package half of pkg.Sel
				}
			}
			pass.Reportf(node.Pos(),
				"plain access to %s, which is accessed atomically (e.g. %s); plain and atomic access race",
				v.Name(), pass.Fset.Position(firstAtomic))
			return true
		})
	}
	return nil
}

// isAtomicFn reports whether the call is a package-level sync/atomic
// function (LoadInt64, AddUint32, StorePointer, ...). Methods of the
// typed atomics also live in sync/atomic but carry a receiver and are
// excluded: the type system already makes their access atomic-only.
func isAtomicFn(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// resolveVar maps the operand of &operand to the variable it denotes:
// a struct field (through a selector) or a plain variable.
func resolveVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	switch x := analysis.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v := pass.SelectedField(x); v != nil {
			return v
		}
		if v, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[x].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// buildParents maps every node to its syntactic parent.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// skipParens returns the nearest non-paren ancestor.
func skipParens(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	p := parents[n]
	for {
		pe, ok := p.(*ast.ParenExpr)
		if !ok {
			return p
		}
		_ = pe
		p = parents[p]
	}
}
