// Package counters exercises the atomicfield rule: once a field is
// touched through sync/atomic, every access must be atomic.
package counters

import (
	"sync"
	"sync/atomic"
)

type stats struct {
	mu      sync.Mutex
	hits    int64 // accessed via sync/atomic
	misses  int64 // accessed via sync/atomic
	batches int64 // plain, mutex-guarded everywhere: not tracked
}

var globalOps int64

func (s *stats) record() {
	atomic.AddInt64(&s.hits, 1)
	atomic.AddInt64((&s.misses), 1)
	atomic.AddInt64(&globalOps, 1)
}

// goodRead loads atomically — the only sanctioned read path.
func (s *stats) goodRead() int64 {
	return atomic.LoadInt64(&s.hits) + atomic.LoadInt64(&s.misses)
}

// goodHelper passes the address on; a pointer is not a plain read.
func (s *stats) goodHelper() *int64 {
	return &s.hits
}

// badRead reads the counter plainly; racing with record's AddInt64.
func (s *stats) badRead() int64 {
	return s.hits // want `plain access to hits, which is accessed atomically`
}

// badGuardedRead shows the subtle case: the mutex does not order this
// read against the atomic writers, so it is still a race.
func (s *stats) badGuardedRead() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.misses // want `plain access to misses, which is accessed atomically`
}

// badWrite resets the counter with a plain store.
func (s *stats) badWrite() {
	s.hits = 0 // want `plain access to hits, which is accessed atomically`
}

// badGlobal reads the package-level counter plainly.
func badGlobal() int64 {
	return globalOps // want `plain access to globalOps, which is accessed atomically`
}

// goodConstruct zero-initializes via a composite literal key — that
// happens before the value is shared and is exempt.
func goodConstruct() *stats {
	return &stats{hits: 0, misses: 0}
}

// goodPlainField: batches is never touched atomically, so the guarded
// plain access is the correct discipline and is not flagged.
func (s *stats) goodPlainField() {
	s.mu.Lock()
	s.batches++
	s.mu.Unlock()
}

// allowedRead carries a justified suppression.
func (s *stats) allowedRead() int64 {
	//pphcr:allow atomicfield single-goroutine test helper runs before any writer starts
	return s.hits
}
