// Package replicate mirrors the replication locks the analyzer keys
// on: the router's topology lock, the per-partition state lock, and the
// standby's apply lock (a leaf by design — always released before the
// apply path calls into the pphcr domain).
package replicate

import "sync"

type nodeState struct {
	mu      sync.Mutex
	healthy bool
}

type Router struct {
	mu    sync.RWMutex
	nodes map[string]*nodeState
}

// Stats is the well-formed nesting: topology lock, then each
// partition's state lock one at a time.
func (r *Router) Stats() int {
	n := 0
	r.mu.RLock()
	for _, ns := range r.nodes {
		ns.mu.Lock()
		if ns.healthy {
			n++
		}
		ns.mu.Unlock()
	}
	r.mu.RUnlock()
	return n
}

// inverted takes the topology lock while holding a partition lock —
// the reverse of the documented order.
func inverted(r *Router, ns *nodeState) {
	ns.mu.Lock()
	r.mu.RLock() // want `lock order inversion: acquiring router topology lock \(Router.mu\) while holding partition state lock \(nodeState.mu\)`
	r.mu.RUnlock()
	ns.mu.Unlock()
}

// siblings holds two partition locks at once; there is no quiesce
// idiom for partitions.
func siblings(a, b *nodeState) {
	a.mu.Lock()
	b.mu.Lock() // want `sibling lock: acquiring partition state lock \(nodeState.mu\) while partition state lock \(nodeState.mu\) is already held`
	b.mu.Unlock()
	a.mu.Unlock()
}

type Standby struct {
	mu      sync.Mutex
	applied uint64
}

// AppliedSeq is the leaf access: nothing else is ever acquired under
// Standby.mu.
func (s *Standby) AppliedSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}
