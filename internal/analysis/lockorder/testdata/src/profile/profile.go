// Package profile mimics the repo's store shape: a mutex-guarded Store
// whose lock sits at the bottom of the pphcr hierarchy.
package profile

import "sync"

type Profile struct{ UserID string }

type Store struct {
	mu sync.RWMutex
	m  map[string]Profile
}

// Put is the well-formed store access: the store lock is a leaf.
func (s *Store) Put(p Profile) {
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[string]Profile)
	}
	s.m[p.UserID] = p
	s.mu.Unlock()
}

// merge holds two store locks at once — siblings of the same level.
func merge(dst, src *Store) {
	dst.mu.Lock()
	src.mu.RLock() // want `sibling lock: acquiring store lock while store lock is already held`
	for id, p := range src.m {
		dst.m[id] = p
	}
	src.mu.RUnlock()
	dst.mu.Unlock()
}
