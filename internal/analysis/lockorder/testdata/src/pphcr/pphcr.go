// Package pphcr mirrors the shapes of the real root package that the
// lockorder analyzer keys on: the commit barrier, the user shards, and
// the ingest mutex.
package pphcr

import (
	"sync"

	"profile"
)

type barrierStripe struct {
	mu sync.RWMutex
}

type commitBarrier struct {
	stripes []barrierStripe
}

// rlock uses the try-then-block idiom; the TryRLock in the condition is
// conditional and must not count as an acquisition.
func (b *commitBarrier) rlock(i uint32) {
	st := &b.stripes[i]
	if st.mu.TryRLock() {
		return
	}
	st.mu.RLock()
}

func (b *commitBarrier) runlock(i uint32) { b.stripes[i].mu.RUnlock() }

// quiesce is the sanctioned lock-all loop: stripes are taken in index
// order, so holding siblings is safe here and must not be flagged.
func (b *commitBarrier) quiesce() {
	for i := range b.stripes {
		b.stripes[i].mu.Lock()
	}
}

func (b *commitBarrier) release() {
	for i := len(b.stripes) - 1; i >= 0; i-- {
		b.stripes[i].mu.Unlock()
	}
}

type userShard struct {
	mu sync.RWMutex
}

type System struct {
	barrier  commitBarrier
	shards   []userShard
	ingestMu sync.Mutex
	Profiles *profile.Store
}

func (s *System) lockShard(sh *userShard) {
	if !sh.mu.TryLock() {
		sh.mu.Lock()
	}
}

func (s *System) checkpointBarrier(fn func()) {
	s.barrier.quiesce()
	defer s.barrier.release()
	fn()
}

// goodWritePath is the canonical mutation shape: barrier stripe, then
// shard, then (inside Put) the store lock — strictly descending.
func goodWritePath(s *System, idx uint32, p profile.Profile) {
	s.barrier.rlock(idx)
	defer s.barrier.runlock(idx)
	sh := &s.shards[idx]
	s.lockShard(sh)
	s.Profiles.Put(p)
	sh.mu.Unlock()
}

// badInversion takes the barrier while already inside a shard critical
// section.
func badInversion(s *System, idx uint32) {
	sh := &s.shards[idx]
	s.lockShard(sh)
	s.barrier.rlock(idx) // want `lock order inversion: acquiring commit barrier stripe while holding user-shard lock`
	s.barrier.runlock(idx)
	sh.mu.Unlock()
}

// badSibling holds two user shards at once outside the quiesce path.
func badSibling(s *System, a, b uint32) {
	s.lockShard(&s.shards[a])
	s.lockShard(&s.shards[b]) // want `sibling lock: acquiring user-shard lock while user-shard lock is already held`
	s.shards[b].mu.Unlock()
	s.shards[a].mu.Unlock()
}

// badIngestOrder pins WAL order with ingestMu but enters the barrier
// second — the checkpoint quiesce could deadlock against it.
func badIngestOrder(s *System) {
	s.ingestMu.Lock()
	s.barrier.rlock(0) // want `lock order inversion: acquiring commit barrier stripe while holding ingest mutex`
	s.barrier.runlock(0)
	s.ingestMu.Unlock()
}

// goodIngest is the real ingest ordering: barrier first, then ingestMu.
func goodIngest(s *System) {
	s.barrier.rlock(0)
	s.ingestMu.Lock()
	s.ingestMu.Unlock()
	s.barrier.runlock(0)
}

// goodCheckpoint: inside checkpointBarrier the whole barrier is held;
// taking a shard underneath it is descending and legal.
func goodCheckpoint(s *System, idx uint32) {
	s.checkpointBarrier(func() {
		sh := &s.shards[idx]
		sh.mu.Lock()
		sh.mu.Unlock()
	})
}

// badCheckpointReentry re-enters the barrier from within the quiesce.
func badCheckpointReentry(s *System, idx uint32) {
	s.checkpointBarrier(func() {
		s.barrier.rlock(idx) // want `sibling lock: acquiring commit barrier stripe while commit barrier stripe is already held`
		s.barrier.runlock(idx)
	})
}

// condMerge: branch merge is an intersection, so the early-return
// unlock path must not leave phantom held state behind.
func condMerge(s *System, idx uint32, fast bool) {
	sh := &s.shards[idx]
	s.lockShard(sh)
	if fast {
		sh.mu.Unlock()
		return
	}
	sh.mu.Unlock()
	s.barrier.rlock(idx)
	s.barrier.runlock(idx)
}

// goroutineFresh: a spawned goroutine starts with an empty held set —
// the shard lock held by the spawner belongs to another stack.
func goroutineFresh(s *System, idx uint32) {
	sh := &s.shards[idx]
	s.lockShard(sh)
	go func() {
		s.barrier.rlock(idx)
		s.barrier.runlock(idx)
	}()
	sh.mu.Unlock()
}

// allowedInversion carries a justified suppression and must be silent.
func allowedInversion(s *System, idx uint32) {
	sh := &s.shards[idx]
	s.lockShard(sh)
	//pphcr:allow lockorder fixture proves a justified suppression silences the finding
	s.barrier.rlock(idx)
	s.barrier.runlock(idx)
	sh.mu.Unlock()
}
