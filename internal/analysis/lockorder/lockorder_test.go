package lockorder_test

import (
	"testing"

	"pphcr/internal/analysis/analysistest"
	"pphcr/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "profile", "pphcr", "replicate")
}
