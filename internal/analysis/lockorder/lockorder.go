// Package lockorder flags acquisitions that invert the repo's
// documented lock hierarchies (docs/analysis.md, docs/durability.md):
//
//	pphcr:     Durability.mu → commit barrier stripe → user shard → store
//	plancache: shard.mu → shard.genMu
//	durable:   WAL.ioMu → walStripe.mu → WAL.commitMu / WAL.deferredMu
//
// Within one hierarchy a function may only acquire downward (toward
// higher levels) while holding a lock, and may never hold two sibling
// locks of the same level at once — except via the lock-all loop idiom
// (quiesce, drain swap), which the analyzer recognizes as a `for` loop
// that net-acquires its class and therefore holds stripes in index
// order by construction.
//
// The analysis is intraprocedural and path-insensitive: branches merge
// to the intersection of their held sets (so a conditional unlock never
// fabricates a held lock), branches that terminate (return/panic) do
// not flow onward, and TryLock/TryRLock inside an if condition is
// treated as not acquiring (both canonical idioms — try-then-block and
// try-fast-path-return — re-acquire on the path that continues).
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"pphcr/internal/analysis"
)

// Analyzer is the lockorder analysis.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "check lock acquisitions against the documented hierarchies " +
		"(barrier → shard → store; ioMu → stripe → commit) and forbid sibling " +
		"shard locks outside the lock-all quiesce idiom",
	Run: run,
}

// class is one rung of a hierarchy. Ordering constraints apply only
// within a domain; locks of different domains are independent.
type class struct {
	domain string
	level  int
	name   string
	order  string // the documented order, quoted in messages
}

const (
	orderPphcr     = "Durability.mu → barrier → shard → store → vector index"
	orderPlancache = "shard.mu → genMu"
	orderWAL       = "ioMu → stripe → commitMu/deferredMu"
	orderReplicate = "Router.mu → nodeState.mu → Standby.mu"
)

// key identifies a lock by the package name and type that own it plus
// the member through which it is acquired (mutex field, or a lock
// method of the owning type).
type key struct{ pkg, typ, member string }

var (
	clsCheckpoint = class{"pphcr", 5, "checkpoint mutex (Durability.mu)", orderPphcr}
	clsBarrier    = class{"pphcr", 10, "commit barrier stripe", orderPphcr}
	clsShard      = class{"pphcr", 20, "user-shard lock", orderPphcr}
	clsIngest     = class{"pphcr", 20, "ingest mutex", orderPphcr}
	clsStore      = class{"pphcr", 30, "store lock", orderPphcr}
	// The ANN index lock sits below the store locks: ingest inserts into
	// the index while holding content.Repository.mu, and index methods
	// must never call back into a store.
	clsVecIndex = class{"pphcr", 40, "vector-index lock (ann.Index.mu)", orderPphcr}

	clsPCShard = class{"plancache", 10, "plan-cache shard lock", orderPlancache}
	clsPCGen   = class{"plancache", 20, "plan-cache generation lock", orderPlancache}

	clsWALIO       = class{"wal", 10, "WAL io mutex", orderWAL}
	clsWALStripe   = class{"wal", 20, "WAL staging stripe", orderWAL}
	clsWALCommit   = class{"wal", 30, "WAL commit mutex", orderWAL}
	clsWALDeferred = class{"wal", 30, "WAL deferred-error mutex", orderWAL}

	// Replication locks. The router holds its topology lock while taking
	// per-partition state locks (stats, reload), never the reverse.
	// Standby.mu is a leaf by design: it is always released before
	// ApplyReplicated calls into the pphcr lock domain, so the apply path
	// can never deadlock against the shipping bookkeeping.
	clsReplRouter  = class{"replicate", 10, "router topology lock (Router.mu)", orderReplicate}
	clsReplNode    = class{"replicate", 20, "partition state lock (nodeState.mu)", orderReplicate}
	clsReplStandby = class{"replicate", 30, "standby apply lock (Standby.mu)", orderReplicate}
)

// fieldClasses maps mutex-valued fields to their class; the lock is
// acquired via field.Lock()/RLock() and released via the Unlock pair.
var fieldClasses = map[key]class{
	{"pphcr", "Durability", "mu"}:    clsCheckpoint,
	{"pphcr", "barrierStripe", "mu"}: clsBarrier,
	{"pphcr", "userShard", "mu"}:     clsShard,
	{"pphcr", "System", "ingestMu"}:  clsIngest,

	{"profile", "Store", "mu"}:       clsStore,
	{"feedback", "Store", "mu"}:      clsStore,
	{"tracking", "Tracker", "mu"}:    clsStore,
	{"content", "Repository", "mu"}:  clsStore,
	{"radiodns", "Directory", "mu"}:  clsStore,
	{"spatial", "Store", "mu"}:       clsStore,
	{"ann", "Index", "mu"}:           clsVecIndex,
	{"plancache", "shard", "mu"}:     clsPCShard,
	{"plancache", "shard", "genMu"}:  clsPCGen,
	{"durable", "WAL", "ioMu"}:       clsWALIO,
	{"durable", "walStripe", "mu"}:   clsWALStripe,
	{"durable", "WAL", "commitMu"}:   clsWALCommit,
	{"durable", "WAL", "deferredMu"}: clsWALDeferred,

	{"replicate", "Router", "mu"}:    clsReplRouter,
	{"replicate", "nodeState", "mu"}: clsReplNode,
	{"replicate", "Standby", "mu"}:   clsReplStandby,
}

// methodOp describes a lock-wrapping method of an owning type.
type methodOp struct {
	cls     class
	acquire bool // else release
	all     bool // quiesce-style: every sibling at once
	// wrapsFn: the method runs its func-literal argument with cls held
	// (checkpointBarrier); neither an acquire nor a release at the call
	// site.
	wrapsFn bool
}

var methodClasses = map[key]methodOp{
	{"pphcr", "commitBarrier", "rlock"}:   {cls: clsBarrier, acquire: true},
	{"pphcr", "commitBarrier", "runlock"}: {cls: clsBarrier},
	{"pphcr", "commitBarrier", "quiesce"}: {cls: clsBarrier, acquire: true, all: true},
	{"pphcr", "commitBarrier", "release"}: {cls: clsBarrier, all: true},
	{"pphcr", "System", "lockShard"}:      {cls: clsShard, acquire: true},
	{"pphcr", "System", "rlockShard"}:     {cls: clsShard, acquire: true},
	{"pphcr", "System", "checkpointBarrier"}: {
		cls: clsBarrier, all: true, wrapsFn: true,
	},
}

// held is one acquired lock on the abstract stack.
type held struct {
	cls class
	all bool
	pos token.Pos
}

type checker struct {
	pass *analysis.Pass
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.stmts(fd.Body.List, nil)
			}
		}
	}
	return nil
}

// stmts runs the abstract lock-state machine over a statement list and
// returns the held set at its end.
func (c *checker) stmts(list []ast.Stmt, h []held) []held {
	for _, s := range list {
		var term bool
		h, term = c.stmt(s, h)
		if term {
			break
		}
	}
	return h
}

// stmt advances the state over one statement; term reports that control
// does not continue past it (return, panic, break, continue).
func (c *checker) stmt(s ast.Stmt, h []held) (out []held, term bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		return c.expr(st.X, h, false), false
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			h = c.expr(r, h, false)
		}
		return h, false
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						h = c.expr(v, h, false)
					}
				}
			}
		}
		return h, false
	case *ast.IfStmt:
		if st.Init != nil {
			h, _ = c.stmt(st.Init, h)
		}
		h = c.expr(st.Cond, h, true)
		thenH := c.stmts(st.Body.List, clone(h))
		thenTerm := terminates(st.Body.List)
		var elseH []held
		elseTerm := false
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			elseH = c.stmts(e.List, clone(h))
			elseTerm = terminates(e.List)
		case *ast.IfStmt:
			eh, et := c.stmt(e, clone(h))
			elseH, elseTerm = eh, et
		default:
			elseH = clone(h)
		}
		switch {
		case thenTerm && elseTerm:
			return h, false
		case thenTerm:
			return elseH, false
		case elseTerm:
			return thenH, false
		default:
			return intersect(thenH, elseH), false
		}
	case *ast.ForStmt:
		if st.Init != nil {
			h, _ = c.stmt(st.Init, h)
		}
		if st.Cond != nil {
			h = c.expr(st.Cond, h, false)
		}
		body := c.stmts(st.Body.List, clone(h))
		return loopResult(h, body), false
	case *ast.RangeStmt:
		h = c.expr(st.X, h, false)
		body := c.stmts(st.Body.List, clone(h))
		return loopResult(h, body), false
	case *ast.BlockStmt:
		return c.stmts(st.List, h), false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.branches(s, h), false
	case *ast.GoStmt:
		// A goroutine starts with no inherited lock state; its body is
		// checked independently.
		if fl, ok := analysis.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			c.stmts(fl.Body.List, nil)
		}
		return h, false
	case *ast.DeferStmt:
		// Deferred releases run at exit; for forward ordering the lock
		// simply stays held. A deferred func literal is checked with the
		// current state (it runs while everything now held may still be).
		if fl, ok := analysis.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			c.stmts(fl.Body.List, clone(h))
		}
		return h, false
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			h = c.expr(r, h, false)
		}
		return h, true
	case *ast.BranchStmt:
		return h, st.Tok == token.BREAK || st.Tok == token.CONTINUE
	case *ast.LabeledStmt:
		return c.stmt(st.Stmt, h)
	default:
		return h, false
	}
}

// branches merges the non-terminating arms of a switch/select.
func (c *checker) branches(s ast.Stmt, h []held) []held {
	var bodies [][]ast.Stmt
	switch st := s.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			h, _ = c.stmt(st.Init, h)
		}
		if st.Tag != nil {
			h = c.expr(st.Tag, h, false)
		}
		for _, cc := range st.Body.List {
			bodies = append(bodies, cc.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range st.Body.List {
			bodies = append(bodies, cc.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			bodies = append(bodies, cc.(*ast.CommClause).Body)
		}
	}
	out := h
	first := true
	for _, b := range bodies {
		bh := c.stmts(b, clone(h))
		if terminates(b) {
			continue
		}
		if first {
			out, first = bh, false
		} else {
			out = intersect(out, bh)
		}
	}
	return out
}

// expr scans an expression for lock operations. inCond marks an if
// condition, where Try(R)Lock is conditional and therefore not treated
// as an acquisition.
func (c *checker) expr(e ast.Expr, h []held, inCond bool) []held {
	switch x := e.(type) {
	case nil:
		return h
	case *ast.CallExpr:
		op, cls, try, classified := c.classify(x)
		for _, a := range x.Args {
			// A func literal handed to a wrapping method is analyzed only
			// under the wrapped lock state, not also as a free literal.
			if _, isLit := analysis.Unparen(a).(*ast.FuncLit); isLit && classified && op == opWraps {
				continue
			}
			h = c.expr(a, h, inCond)
		}
		if classified {
			if try && inCond {
				return h
			}
			switch op {
			case opAcquire:
				return c.acquire(h, cls, false, x.Pos())
			case opAcquireAll:
				return c.acquire(h, cls, true, x.Pos())
			case opRelease:
				return release(h, cls)
			case opWraps:
				for _, a := range x.Args {
					if fl, ok := analysis.Unparen(a).(*ast.FuncLit); ok {
						c.stmts(fl.Body.List, c.acquire(clone(h), cls, true, x.Pos()))
					}
				}
				return h
			}
		}
		return c.expr(x.Fun, h, inCond)
	case *ast.ParenExpr:
		return c.expr(x.X, h, inCond)
	case *ast.UnaryExpr:
		return c.expr(x.X, h, inCond)
	case *ast.BinaryExpr:
		h = c.expr(x.X, h, inCond)
		return c.expr(x.Y, h, inCond)
	case *ast.FuncLit:
		// A func literal that is not directly a go/defer/wrap target is
		// checked independently: when it runs is unknown.
		c.stmts(x.Body.List, nil)
		return h
	default:
		return h
	}
}

type op int

const (
	opAcquire op = iota
	opAcquireAll
	opRelease
	opWraps
)

// classify resolves a call to a lock operation via the field and method
// tables. try marks sync Try(R)Lock acquisitions.
func (c *checker) classify(call *ast.CallExpr) (op, class, bool, bool) {
	sel, recv, ok := analysis.CalleeMethod(call)
	if !ok {
		return 0, class{}, false, false
	}
	method := sel.Sel.Name

	// sync.Mutex / sync.RWMutex primitive on an owner's mutex field.
	if fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
		var acquire, try bool
		switch method {
		case "Lock", "RLock":
			acquire = true
		case "TryLock", "TryRLock":
			acquire, try = true, true
		case "Unlock", "RUnlock":
		default:
			return 0, class{}, false, false
		}
		fieldSel, ok := analysis.Unparen(recv).(*ast.SelectorExpr)
		if !ok {
			return 0, class{}, false, false
		}
		ownerPkg, ownerType, ok := analysis.NamedOwner(c.pass.TypesInfo.TypeOf(fieldSel.X))
		if !ok {
			return 0, class{}, false, false
		}
		cls, ok := fieldClasses[key{ownerPkg, ownerType, fieldSel.Sel.Name}]
		if !ok {
			return 0, class{}, false, false
		}
		if acquire {
			return opAcquire, cls, try, true
		}
		return opRelease, cls, false, true
	}

	// Lock-wrapping method of an owning type.
	ownerPkg, ownerType, ok := analysis.NamedOwner(c.pass.TypesInfo.TypeOf(recv))
	if !ok {
		return 0, class{}, false, false
	}
	mo, ok := methodClasses[key{ownerPkg, ownerType, method}]
	if !ok {
		return 0, class{}, false, false
	}
	switch {
	case mo.wrapsFn:
		return opWraps, mo.cls, false, true
	case mo.acquire && mo.all:
		return opAcquireAll, mo.cls, false, true
	case mo.acquire:
		return opAcquire, mo.cls, false, true
	default:
		return opRelease, mo.cls, false, true
	}
}

// acquire checks the new lock against everything held and pushes it.
func (c *checker) acquire(h []held, cls class, all bool, pos token.Pos) []held {
	for _, hl := range h {
		if hl.cls.domain != cls.domain {
			continue
		}
		if hl.cls.level > cls.level {
			c.pass.Reportf(pos,
				"lock order inversion: acquiring %s while holding %s (%s); the documented order is %s",
				cls.name, hl.cls.name, c.pass.Fset.Position(hl.pos), cls.order)
		} else if hl.cls.level == cls.level {
			c.pass.Reportf(pos,
				"sibling lock: acquiring %s while %s is already held (%s); only the lock-all quiesce/drain loop may hold siblings",
				cls.name, hl.cls.name, c.pass.Fset.Position(hl.pos))
		}
	}
	return append(h, held{cls: cls, all: all, pos: pos})
}

// release pops the most recent held lock of the class (no-op when the
// class is not held — the lock was acquired by a caller).
func release(h []held, cls class) []held {
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].cls == cls {
			return append(append([]held(nil), h[:i]...), h[i+1:]...)
		}
	}
	return h
}

// loopResult folds a loop body's exit state into the continuation:
// locks the body net-acquired become held-all (the lock-all idiom —
// index order makes siblings safe); locks it net-released stay
// released.
func loopResult(before, after []held) []held {
	pre := make(map[token.Pos]bool, len(before))
	for _, hl := range before {
		pre[hl.pos] = true
	}
	out := clone(after)
	for i := range out {
		if !pre[out[i].pos] {
			out[i].all = true
		}
	}
	return out
}

func clone(h []held) []held { return append([]held(nil), h...) }

// intersect merges two branch exits: a lock survives only if both
// branches still hold it (matching by acquisition site).
func intersect(a, b []held) []held {
	inB := make(map[token.Pos]bool, len(b))
	for _, hl := range b {
		inB[hl.pos] = true
	}
	var out []held
	for _, hl := range a {
		if inB[hl.pos] {
			out = append(out, hl)
		}
	}
	return out
}

// terminates reports whether a statement list always leaves the
// enclosing control flow (return/panic/break/continue at its end).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch st := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return st.Tok == token.BREAK || st.Tok == token.CONTINUE || st.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := analysis.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(st.List)
	}
	return false
}
