// Package synth generates the synthetic world the experiments run on.
// The paper's deployment sits on proprietary Rai assets — live streams,
// >100 daily editorial podcasts, real listener GPS traces. None of those
// are redistributable, so this package produces statistically plausible
// substitutes with the properties the algorithms actually exploit:
//
//   - a city road network with junctions (package roadnet),
//   - personas with hidden category tastes and repeated home↔work
//     commutes with GPS noise,
//   - 10 radio services with daily schedules (hourly fixed news, the
//     rest replaceable),
//   - a daily podcast corpus with per-category vocabularies, so the
//     ASR→Bayes pipeline has real signal to recover,
//   - a labeled training corpus for the classifier.
//
// Everything is deterministic given Params.Seed.
package synth

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"pphcr/internal/content"
	"pphcr/internal/geo"
	"pphcr/internal/profile"
	"pphcr/internal/radiodns"
	"pphcr/internal/roadnet"
	"pphcr/internal/textclass"
	"pphcr/internal/trajectory"
)

// Params sizes the generated world.
type Params struct {
	Seed           int64
	StartDate      time.Time // defaults to Mon 2016-11-14 (paper epoch)
	Days           int       // defaults to 14
	Users          int       // defaults to 20
	Stations       int       // defaults to 10 (the paper's Radio Rai count)
	PodcastsPerDay int       // defaults to 100 ("more than 100 podcasts created every day")
	// TrainingDocsPerCategory sizes the classifier training corpus.
	TrainingDocsPerCategory int // defaults to 30
}

func (p Params) withDefaults() Params {
	if p.StartDate.IsZero() {
		p.StartDate = time.Date(2016, 11, 14, 0, 0, 0, 0, time.UTC)
	}
	if p.Days <= 0 {
		p.Days = 14
	}
	if p.Users <= 0 {
		p.Users = 20
	}
	if p.Stations <= 0 {
		p.Stations = 10
	}
	if p.PodcastsPerDay <= 0 {
		p.PodcastsPerDay = 100
	}
	if p.TrainingDocsPerCategory <= 0 {
		p.TrainingDocsPerCategory = 30
	}
	return p
}

// Persona is one synthetic listener.
type Persona struct {
	Profile profile.Profile
	// TrueInterests is the hidden taste vector (normalized, positive).
	TrueInterests map[string]float64
	Home, Work    geo.Point
	HomeNode      roadnet.NodeID
	WorkNode      roadnet.NodeID
	// Gym is the occasional evening destination (≈20% of weekday
	// evenings), giving destination prediction genuine uncertainty.
	Gym     geo.Point
	GymNode roadnet.NodeID
	// MorningHour / EveningHour are mean departure hours (fractional).
	MorningHour float64
	EveningHour float64
	// Seed drives the persona's private randomness (behaviour, jitter).
	Seed int64
}

// World is the generated environment.
type World struct {
	Params    Params
	City      *roadnet.City
	Directory *radiodns.Directory
	// Corpus is the raw podcast stream over all days, in publish order.
	Corpus []content.RawPodcast
	// Training is the labeled classifier training set.
	Training []textclass.Document
	// Vocab is the full per-category vocabulary (for ASR confusions).
	// Each category mixes words unique to it with words from the shared
	// pool, so categories overlap lexically as real editorial topics do.
	Vocab map[string][]string
	// SharedVocab is the cross-category word pool.
	SharedVocab []string
	// FlatVocab is every word (for seeding the recognizer).
	FlatVocab []string
	Personas  []*Persona
}

// stationGenres gives each synthetic service an editorial identity, so
// schedules and favorite-station choices are coherent.
var stationGenres = [][]string{
	{"politics", "international", "economics"}, // radio1: news talk
	{"culture", "literature", "theatre"},       // radio2
	{"music", "comedy", "society"},             // radio3
	{"sport", "regional"},                      // radio4
	{"food", "travel", "health"},               // radio5
	{"technology", "science", "education"},     // radio6
	{"cinema", "art", "fashion"},               // radio7
	{"history", "documentary", "religion"},     // radio8
	{"finance", "business"},                    // radio9
	{"environment", "weather", "interviews"},   // radio10
}

// GenerateWorld builds the world deterministically from params.
func GenerateWorld(params Params) (*World, error) {
	params = params.withDefaults()
	rng := rand.New(rand.NewSource(params.Seed))
	w := &World{
		Params:    params,
		City:      roadnet.GenerateCity(roadnet.CityParams{}),
		Directory: radiodns.NewDirectory(),
		Vocab:     make(map[string][]string),
	}
	// Vocabulary: 28 words unique to each category plus 12 drawn from a
	// shared pool of 60 general-news words. The shared words blur
	// category boundaries, keeping the classification task non-trivial.
	w.SharedVocab = categoryVocab("comune", 60)
	for ci, cat := range content.Categories {
		words := categoryVocab(cat, 28)
		for k := 0; k < 12; k++ {
			words = append(words, w.SharedVocab[(ci*7+k*5)%len(w.SharedVocab)])
		}
		w.Vocab[cat] = words
		w.FlatVocab = append(w.FlatVocab, w.Vocab[cat]...)
	}
	w.generateTraining(rng)
	if err := w.generateStations(rng); err != nil {
		return nil, err
	}
	w.generateCorpus(rng)
	w.generatePersonas(rng)
	return w, nil
}

// categoryVocab derives a deterministic pseudo-Italian vocabulary for a
// category. Words embed the full category name so that debugging output
// is self-describing and vocabularies stay disjoint across categories
// (no category name is a prefix of another).
func categoryVocab(cat string, size int) []string {
	syllables := []string{"ra", "mi", "to", "ne", "la", "vi", "co", "se", "du", "pa"}
	out := make([]string, size)
	for i := 0; i < size; i++ {
		var sb strings.Builder
		sb.WriteString(cat)
		n := i
		for k := 0; k < 3; k++ {
			sb.WriteString(syllables[n%len(syllables)])
			n /= len(syllables)
		}
		out[i] = sb.String()
	}
	return out
}

// sampleSpeech draws n words: mostly category vocabulary, salted with
// stopwords and cross-category noise like real speech.
func (w *World) sampleSpeech(rng *rand.Rand, cat string, n int) string {
	vocab := w.Vocab[cat]
	stop := textclass.Stopwords()
	words := make([]string, n)
	for i := range words {
		r := rng.Float64()
		switch {
		case r < 0.70:
			words[i] = vocab[rng.Intn(len(vocab))]
		case r < 0.90:
			words[i] = stop[rng.Intn(len(stop))]
		default:
			words[i] = w.FlatVocab[rng.Intn(len(w.FlatVocab))]
		}
	}
	return strings.Join(words, " ")
}

func (w *World) generateTraining(rng *rand.Rand) {
	for _, cat := range content.Categories {
		for d := 0; d < w.Params.TrainingDocsPerCategory; d++ {
			text := w.sampleSpeech(rng, cat, 60)
			w.Training = append(w.Training, textclass.Document{
				Tokens:   textclass.Tokenize(text),
				Category: cat,
			})
		}
	}
}

func (w *World) generateStations(rng *rand.Rand) error {
	for s := 0; s < w.Params.Stations; s++ {
		id := fmt.Sprintf("radio%d", s+1)
		svc := &radiodns.Service{
			ID:          id,
			Name:        fmt.Sprintf("Rai Radio %d (synthetic)", s+1),
			GCC:         "5e0",
			PI:          fmt.Sprintf("52%02x", s+1),
			Frequency:   8750 + s*40,
			StreamURL:   "http://stream.pphcr.local/" + id,
			BitrateKbps: 96,
		}
		if err := w.Directory.AddService(svc); err != nil {
			return err
		}
		genres := stationGenres[s%len(stationGenres)]
		if err := w.generateSchedule(rng, id, genres); err != nil {
			return err
		}
	}
	return nil
}

// generateSchedule lays out each day 06:00–24:00: a fixed (non
// replaceable) news bulletin on every hour, the gaps filled with
// replaceable programs in the station's genres. The schedule extends a
// week past Params.Days so that held-out evaluation days (the listening
// simulations replay "next week") still have programming.
func (w *World) generateSchedule(rng *rand.Rand, serviceID string, genres []string) error {
	durations := []time.Duration{10 * time.Minute, 15 * time.Minute, 20 * time.Minute, 25 * time.Minute}
	progID := 0
	for d := 0; d < w.Params.Days+7; d++ {
		day := w.Params.StartDate.AddDate(0, 0, d)
		for hour := 6; hour < 24; hour++ {
			hourStart := day.Add(time.Duration(hour) * time.Hour)
			news := &radiodns.Program{
				ID:        fmt.Sprintf("%s-d%d-h%d-news", serviceID, d, hour),
				ServiceID: serviceID,
				Title:     "GR News",
				Start:     hourStart,
				Duration:  5 * time.Minute,
				Categories: map[string]float64{
					"politics": 0.5, "international": 0.3, "regional": 0.2,
				},
				Replaceable: false,
			}
			if err := w.Directory.AddProgram(news); err != nil {
				return err
			}
			cursor := hourStart.Add(5 * time.Minute)
			hourEnd := hourStart.Add(time.Hour)
			for cursor.Before(hourEnd) {
				dur := durations[rng.Intn(len(durations))]
				if remaining := hourEnd.Sub(cursor); dur > remaining {
					dur = remaining
				}
				genre := genres[rng.Intn(len(genres))]
				progID++
				p := &radiodns.Program{
					ID:          fmt.Sprintf("%s-p%06d", serviceID, progID),
					ServiceID:   serviceID,
					Title:       fmt.Sprintf("%s show %d", genre, progID),
					Start:       cursor,
					Duration:    dur,
					Categories:  map[string]float64{genre: 0.8, genres[0]: 0.2},
					Replaceable: true,
				}
				if err := w.Directory.AddProgram(p); err != nil {
					return err
				}
				cursor = cursor.Add(dur)
			}
		}
	}
	return nil
}

func (w *World) generateCorpus(rng *rand.Rand) {
	cats := content.Categories
	for d := 0; d < w.Params.Days; d++ {
		day := w.Params.StartDate.AddDate(0, 0, d)
		for i := 0; i < w.Params.PodcastsPerDay; i++ {
			cat := cats[rng.Intn(len(cats))]
			dur := time.Duration(3+rng.Intn(10)) * time.Minute
			published := day.Add(5*time.Hour + time.Duration(rng.Intn(15*3600))*time.Second)
			raw := content.RawPodcast{
				ID:        fmt.Sprintf("pod-d%02d-%04d", d, i),
				Title:     fmt.Sprintf("%s podcast %d/%d", cat, d, i),
				Program:   programNameFor(cat),
				Duration:  dur,
				Published: published,
				Speech:    w.sampleSpeech(rng, cat, 120),
				Kind:      content.KindClip,
			}
			if cat == "politics" || cat == "international" || cat == "regional" {
				raw.Kind = content.KindNews
			}
			// ~12% of items are geo-scoped (local news, venue stories):
			// anchor them near a random ring roundabout or grid point.
			if rng.Float64() < 0.12 {
				anchor := w.randomCityPoint(rng)
				raw.Geo = &content.GeoRelevance{
					Center: anchor,
					Radius: 500 + rng.Float64()*2500,
				}
			}
			w.Corpus = append(w.Corpus, raw)
		}
	}
}

// programNameFor gives podcasts plausible editorial program names; the
// food program is "Decanter", as in the paper's Lilly scenario.
func programNameFor(cat string) string {
	switch cat {
	case "food":
		return "Decanter"
	case "technology":
		return "Wikiradio" // Greg's favorite in §2.1.1
	case "comedy":
		return "The rabbit's roar"
	default:
		return strings.ToUpper(cat[:1]) + cat[1:] + " Magazine"
	}
}

func (w *World) randomCityPoint(rng *rand.Rand) geo.Point {
	g := w.City.Graph
	id := roadnet.NodeID(rng.Intn(g.NumNodes()))
	return g.Node(id).Point
}

func (w *World) generatePersonas(rng *rand.Rand) {
	cats := content.Categories
	for u := 0; u < w.Params.Users; u++ {
		// Hidden tastes: 2–4 categories, normalized.
		k := 2 + rng.Intn(3)
		interests := make(map[string]float64, k)
		var names []string
		for len(interests) < k {
			c := cats[rng.Intn(len(cats))]
			if _, dup := interests[c]; dup {
				continue
			}
			interests[c] = 0.5 + rng.Float64()
			names = append(names, c)
		}
		var norm float64
		for _, v := range interests {
			norm += v
		}
		for c := range interests {
			interests[c] /= norm
		}
		// Home in a suburb, work downtown, gym on the grid border.
		homePt := w.City.RandomSuburb(rng.Float64()*360, 200+rng.Float64()*1500)
		homeNode := w.City.Graph.NearestNode(homePt)
		rows := len(w.City.GridNodes)
		cols := len(w.City.GridNodes[0])
		workNode := w.City.GridNodes[1+rng.Intn(rows-2)][1+rng.Intn(cols-2)]
		gymNode := w.City.GridNodes[0][1+rng.Intn(cols-2)]
		persona := &Persona{
			Profile: profile.Profile{
				UserID:          fmt.Sprintf("user-%03d", u),
				Name:            fmt.Sprintf("Listener %03d", u),
				Age:             20 + rng.Intn(45),
				Hometown:        w.City.Graph.Node(homeNode).Point,
				Interests:       names,
				FavoriteService: w.favoriteStation(names),
			},
			TrueInterests: interests,
			Home:          w.City.Graph.Node(homeNode).Point,
			Work:          w.City.Graph.Node(workNode).Point,
			Gym:           w.City.Graph.Node(gymNode).Point,
			HomeNode:      homeNode,
			WorkNode:      workNode,
			GymNode:       gymNode,
			MorningHour:   7.2 + rng.Float64()*1.2,
			EveningHour:   17.0 + rng.Float64()*1.5,
			Seed:          w.Params.Seed*1000 + int64(u),
		}
		w.Personas = append(w.Personas, persona)
	}
}

// favoriteStation picks the service whose genres best overlap the
// interests.
func (w *World) favoriteStation(interests []string) string {
	best, bestScore := "radio1", -1
	for s := 0; s < w.Params.Stations; s++ {
		genres := stationGenres[s%len(stationGenres)]
		score := 0
		for _, g := range genres {
			for _, i := range interests {
				if g == i {
					score++
				}
			}
		}
		if score > bestScore {
			best, bestScore = fmt.Sprintf("radio%d", s+1), score
		}
	}
	return best
}

// EveningDestination returns where the persona heads after work on the
// given day: usually home, but on ≈20% of days the gym. Deterministic
// per (persona, day).
func (w *World) EveningDestination(p *Persona, day time.Time) (roadnet.NodeID, bool) {
	rng := rand.New(rand.NewSource(p.Seed ^ day.Unix() ^ 0x5ca1ab1e))
	if rng.Float64() < 0.2 {
		return p.GymNode, true
	}
	return p.HomeNode, false
}

// CommuteTrace generates the GPS trace of one commute leg on the given
// day: the road-network shortest path traversed with per-day speed
// variation and per-fix GPS noise, sampled every ~30 s. Evening legs go
// to EveningDestination (home or, occasionally, the gym).
func (w *World) CommuteTrace(p *Persona, day time.Time, morning bool) (trajectory.Trace, roadnet.Route, error) {
	from, to := p.HomeNode, p.WorkNode
	hour := p.MorningHour
	if !morning {
		from = p.WorkNode
		to, _ = w.EveningDestination(p, day)
		hour = p.EveningHour
	}
	route, err := w.City.Graph.ShortestPath(from, to)
	if err != nil {
		return nil, roadnet.Route{}, err
	}
	// Per-day, per-leg deterministic jitter.
	legSeed := p.Seed ^ day.Unix()
	if morning {
		legSeed ^= 0x5bd1e995
	}
	rng := rand.New(rand.NewSource(legSeed))
	depart := day.Add(time.Duration((hour + rng.NormFloat64()*0.15) * float64(time.Hour)))
	speedFactor := 0.85 + rng.Float64()*0.35 // traffic conditions
	duration := time.Duration(float64(route.TravelTime) / speedFactor)

	const fixInterval = 30 * time.Second
	var trace trajectory.Trace
	for t := time.Duration(0); ; t += fixInterval {
		if t > duration {
			t = duration
		}
		frac := float64(t) / float64(duration)
		pt := route.Polyline.At(frac)
		pt = geo.Destination(pt, rng.Float64()*360, rng.Float64()*12) // GPS noise ≤12 m
		trace = append(trace, trajectory.Fix{Point: pt, Time: depart.Add(t)})
		if t == duration {
			break
		}
	}
	return trace, route, nil
}
