package synth

import (
	"strings"
	"testing"
	"time"

	"pphcr/internal/asr"
	"pphcr/internal/content"
	"pphcr/internal/geo"
	"pphcr/internal/textclass"
)

func smallWorld(t *testing.T) *World {
	t.Helper()
	w, err := GenerateWorld(Params{
		Seed: 42, Days: 3, Users: 5, Stations: 4, PodcastsPerDay: 20,
		TrainingDocsPerCategory: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateWorldShape(t *testing.T) {
	w := smallWorld(t)
	if len(w.Personas) != 5 {
		t.Fatalf("personas = %d", len(w.Personas))
	}
	if got := len(w.Directory.Services()); got != 4 {
		t.Fatalf("services = %d", got)
	}
	if len(w.Corpus) != 3*20 {
		t.Fatalf("corpus = %d", len(w.Corpus))
	}
	if len(w.Training) != len(content.Categories)*10 {
		t.Fatalf("training = %d", len(w.Training))
	}
	if len(w.Vocab) != len(content.Categories) {
		t.Fatalf("vocab categories = %d", len(w.Vocab))
	}
}

func TestWorldDeterminism(t *testing.T) {
	p := Params{Seed: 7, Days: 2, Users: 3, Stations: 2, PodcastsPerDay: 10, TrainingDocsPerCategory: 5}
	a, err := GenerateWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Corpus {
		if a.Corpus[i].Speech != b.Corpus[i].Speech || a.Corpus[i].ID != b.Corpus[i].ID {
			t.Fatalf("corpus differs at %d", i)
		}
	}
	for i := range a.Personas {
		if a.Personas[i].Home != b.Personas[i].Home {
			t.Fatalf("persona %d home differs", i)
		}
	}
}

func TestVocabularyStructure(t *testing.T) {
	w := smallWorld(t)
	shared := map[string]bool{}
	for _, word := range w.SharedVocab {
		shared[word] = true
	}
	// Unique (non-shared) words must be disjoint across categories; a
	// controlled fraction of each vocabulary comes from the shared pool.
	seen := map[string]string{}
	for cat, words := range w.Vocab {
		sharedCount := 0
		for _, word := range words {
			if shared[word] {
				sharedCount++
				continue
			}
			if prev, dup := seen[word]; dup && prev != cat {
				t.Fatalf("unique word %q in both %q and %q", word, prev, cat)
			}
			seen[word] = cat
		}
		if sharedCount == 0 {
			t.Fatalf("category %q has no shared-pool words", cat)
		}
		if sharedCount >= len(words)/2 {
			t.Fatalf("category %q overwhelmed by shared words (%d/%d)", cat, sharedCount, len(words))
		}
	}
}

func TestScheduleCoverage(t *testing.T) {
	w := smallWorld(t)
	day := w.Params.StartDate
	// Every hour 06–24 must have a program on air on every service, and
	// hourly news must be non-replaceable.
	for _, svc := range w.Directory.Services() {
		for hour := 6; hour < 24; hour++ {
			at := day.Add(time.Duration(hour)*time.Hour + time.Minute)
			prog, err := w.Directory.ProgramAt(svc.ID, at)
			if err != nil {
				t.Fatalf("%s hour %d: %v", svc.ID, hour, err)
			}
			if prog.Replaceable {
				t.Fatalf("%s hour %d: news should not be replaceable", svc.ID, hour)
			}
			at2 := day.Add(time.Duration(hour)*time.Hour + 20*time.Minute)
			if _, err := w.Directory.ProgramAt(svc.ID, at2); err != nil {
				t.Fatalf("%s hour %d mid-hour: %v", svc.ID, hour, err)
			}
		}
	}
}

func TestPersonaInvariants(t *testing.T) {
	w := smallWorld(t)
	ids := map[string]bool{}
	for _, p := range w.Personas {
		if ids[p.Profile.UserID] {
			t.Fatalf("duplicate user ID %s", p.Profile.UserID)
		}
		ids[p.Profile.UserID] = true
		var sum float64
		for _, v := range p.TrueInterests {
			if v <= 0 {
				t.Fatalf("non-positive interest for %s", p.Profile.UserID)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("interests not normalized: %v", sum)
		}
		if len(p.TrueInterests) < 2 || len(p.TrueInterests) > 4 {
			t.Fatalf("interest count = %d", len(p.TrueInterests))
		}
		// Home outside ring, work downtown: they must differ by km.
		if d := geo.Distance(p.Home, p.Work); d < 2000 {
			t.Fatalf("commute too short: %v m", d)
		}
		if p.MorningHour < 7 || p.MorningHour > 8.5 {
			t.Fatalf("morning hour = %v", p.MorningHour)
		}
		if p.Profile.FavoriteService == "" {
			t.Fatal("no favorite service")
		}
	}
}

func TestCorpusProperties(t *testing.T) {
	w := smallWorld(t)
	geoCount := 0
	for _, raw := range w.Corpus {
		if raw.Duration < 3*time.Minute || raw.Duration > 12*time.Minute {
			t.Fatalf("duration out of range: %v", raw.Duration)
		}
		if len(raw.Speech) == 0 {
			t.Fatal("empty speech")
		}
		if raw.Geo != nil {
			geoCount++
			if raw.Geo.Radius < 500 || raw.Geo.Radius > 3000 {
				t.Fatalf("geo radius = %v", raw.Geo.Radius)
			}
		}
	}
	if geoCount == 0 {
		t.Fatal("no geo-scoped items generated")
	}
}

func TestCommuteTrace(t *testing.T) {
	w := smallWorld(t)
	p := w.Personas[0]
	day := w.Params.StartDate
	trace, route, err := w.CommuteTrace(p, day, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) < 5 {
		t.Fatalf("trace too short: %d fixes", len(trace))
	}
	// Trace starts near home and ends near work (noise ≤ 12 m, node
	// matching ≤ a block).
	if d := geo.Distance(trace[0].Point, p.Home); d > 50 {
		t.Fatalf("trace starts %v m from home", d)
	}
	if d := geo.Distance(trace[len(trace)-1].Point, p.Work); d > 50 {
		t.Fatalf("trace ends %v m from work", d)
	}
	// Timestamps strictly increasing.
	for i := 1; i < len(trace); i++ {
		if !trace[i].Time.After(trace[i-1].Time) {
			t.Fatal("timestamps not increasing")
		}
	}
	if route.Length <= 0 || route.TravelTime <= 0 {
		t.Fatalf("route = %+v", route)
	}
	// Same persona, same day ⇒ identical trace (deterministic).
	trace2, _, err := w.CommuteTrace(p, day, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace2) != len(trace) || trace2[3].Point != trace[3].Point {
		t.Fatal("commute trace not deterministic")
	}
	// Evening leg starts at work and ends at home or at the gym.
	evening, _, err := w.CommuteTrace(p, day, false)
	if err != nil {
		t.Fatal(err)
	}
	if d := geo.Distance(evening[0].Point, p.Work); d > 50 {
		t.Fatalf("evening trace starts %v m from work", d)
	}
	end := evening[len(evening)-1].Point
	if geo.Distance(end, p.Home) > 50 && geo.Distance(end, p.Gym) > 50 {
		t.Fatalf("evening trace ends %v, neither home nor gym", end)
	}
}

func TestEveningDestinationDistribution(t *testing.T) {
	w := smallWorld(t)
	p := w.Personas[0]
	gymDays := 0
	const days = 200
	for d := 0; d < days; d++ {
		node, isGym := w.EveningDestination(p, w.Params.StartDate.AddDate(0, 0, d))
		if isGym && node != p.GymNode {
			t.Fatal("gym flag/node mismatch")
		}
		if !isGym && node != p.HomeNode {
			t.Fatal("home flag/node mismatch")
		}
		if isGym {
			gymDays++
		}
	}
	share := float64(gymDays) / days
	if share < 0.1 || share > 0.3 {
		t.Fatalf("gym share = %.2f, want ≈0.2", share)
	}
	// Deterministic per (persona, day).
	n1, g1 := w.EveningDestination(p, w.Params.StartDate)
	n2, g2 := w.EveningDestination(p, w.Params.StartDate)
	if n1 != n2 || g1 != g2 {
		t.Fatal("EveningDestination not deterministic")
	}
}

// TestPipelineLearnability is the end-to-end sanity check of the corpus
// design: a classifier trained on the synthetic training set must
// recover podcast categories through a noisy ASR channel well above
// chance (1/30).
func TestPipelineLearnability(t *testing.T) {
	w := smallWorld(t)
	var nb textclass.NaiveBayes
	if err := nb.Train(w.Training); err != nil {
		t.Fatal(err)
	}
	rec, err := asr.New(0.15, asr.DefaultErrorProfile(), w.FlatVocab, 3)
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for _, raw := range w.Corpus {
		recognized := rec.TranscribeText(raw.Speech)
		pred, _, ok := nb.Classify(textclass.Tokenize(recognized))
		if !ok {
			t.Fatal("classifier not ok")
		}
		// The generator puts the true category as the first title word.
		total++
		if pred == strings.Fields(raw.Title)[0] {
			correct++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.8 {
		t.Fatalf("pipeline accuracy %.2f too low at WER 0.15", acc)
	}
}
