package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ReplayStats reports what a recovery pass read.
type ReplayStats struct {
	// Events is the number of valid records applied.
	Events int
	// Segments is the number of segment files visited.
	Segments int
	// Torn reports whether the newest segment ended in a torn record
	// (the expected signature of a crash mid-append).
	Torn bool
}

// Replay streams every WAL record in segments >= fromSeq, in order,
// through fn. A torn record at the tail of the newest segment is
// tolerated (replay stops there and Torn is set); a torn or corrupt
// record anywhere else is real corruption and fails the recovery, as
// does an error from fn. Missing segments inside the replayed range
// fail it too — a gap means mutations are unrecoverable.
func Replay(dir string, fromSeq int64, fn func(Event) error) (ReplayStats, error) {
	var st ReplayStats
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil
		}
		return st, fmt.Errorf("durable: listing segments: %w", err)
	}
	// Seeding prev at fromSeq-1 makes the gap check cover the range
	// start too: if the segment the checkpoint hands off to is missing,
	// recovery must fail, not silently resume at a later one.
	prev := fromSeq - 1
	for _, seg := range segs {
		if seg.seq < fromSeq {
			continue
		}
		if prev > 0 && seg.seq != prev+1 {
			return st, fmt.Errorf("durable: segment gap: %d follows %d", seg.seq, prev)
		}
		prev = seg.seq
		st.Segments++
		last := seg.seq == segs[len(segs)-1].seq
		torn, validOff, n, err := replaySegment(seg.path, fn)
		st.Events += n
		if err != nil {
			return st, err
		}
		if torn {
			if !last {
				return st, fmt.Errorf("durable: torn record mid-log in segment %d", seg.seq)
			}
			// A benign crash tear is strictly a suffix: one partial
			// record and nothing after it. A valid frame anywhere past
			// the tear means the tear is mid-segment *corruption* —
			// tolerating it would silently drop (and, via OpenWAL's
			// truncation, destroy) durably-synced records.
			ok, err := validFrameAfter(seg.path, validOff)
			if err != nil {
				return st, err
			}
			if ok {
				return st, fmt.Errorf("durable: corrupt record inside segment %d (valid records follow the damage)", seg.seq)
			}
			st.Torn = true
		}
	}
	return st, nil
}

// replaySegment reads one segment, applying each valid record. validOff
// is the byte length of the valid prefix (where a tear, if any, starts).
func replaySegment(path string, fn func(Event) error) (torn bool, validOff int64, n int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, 0, 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		e, err := readRecord(r)
		if err == io.EOF {
			return false, validOff, n, nil
		}
		if err == ErrTorn {
			return true, validOff, n, nil // stop at the valid prefix
		}
		if err != nil {
			return false, validOff, n, err // real I/O failure
		}
		if err := fn(e); err != nil {
			return false, validOff, n, fmt.Errorf("durable: applying %s record: %w", e.Type, err)
		}
		validOff += recordSize(e)
		n++
	}
}

// validFrameAfter reports whether any byte offset past `from` in the
// segment decodes as a CRC-valid record frame. Only called on the
// (bounded-size) final segment when a tear was found, so the sliding
// scan is affordable; a CRC false positive needs a 1-in-2^32 collision
// at some alignment of a partial record's own bytes.
func validFrameAfter(path string, from int64) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	if _, err := f.Seek(from, 0); err != nil {
		return false, err
	}
	rem, err := io.ReadAll(f)
	if err != nil {
		return false, err
	}
	for i := 1; i+headerSize < len(rem); i++ {
		n := binary.LittleEndian.Uint32(rem[i : i+4])
		if n == 0 || n > maxRecordSize || i+headerSize+int(n) > len(rem) {
			continue
		}
		want := binary.LittleEndian.Uint32(rem[i+4 : i+8])
		if crc32.Checksum(rem[i+headerSize:i+headerSize+int(n)], castagnoli) == want {
			return true, nil
		}
	}
	return false, nil
}
