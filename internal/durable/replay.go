package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

// ReplayStats reports what a recovery pass read.
type ReplayStats struct {
	// Events is the number of valid records applied.
	Events int
	// Segments is the number of segment files visited.
	Segments int
	// Torn reports whether the newest segment ended in a torn record
	// (the expected signature of a crash mid-append).
	Torn bool
	// MaxSeq is the highest record sequence number seen. Callers hand
	// it to OpenWAL via Options.InitialSeq so the open does not re-read
	// the segments replay just read.
	MaxSeq uint64
}

// Replay reads every WAL record in segments >= fromSeq, totally orders
// them by their stamped sequence number, and applies them through fn.
//
// The sort is what makes the multi-producer log replayable: the
// background writer drains per-stripe staging buffers, so the physical
// record order on disk is only approximately the commit order (a
// producer preempted between taking its sequence number and staging
// lands late). Ordering by sequence restores the commit order exactly —
// per-user order because callers serialize a user's appends, and
// cross-user causal order because a dependent mutation always takes its
// sequence number after the mutation it observed completed. The
// replayed range is bounded by checkpoint truncation, so buffering it
// is at most one checkpoint interval of traffic.
//
// A torn record at the tail of the newest segment is tolerated (replay
// drops it and Torn is set); a torn or corrupt record anywhere else is
// real corruption and fails the recovery, as does an error from fn.
// Missing segments inside the replayed range fail it too — a gap means
// mutations are unrecoverable.
func Replay(dir string, fromSeq int64, fn func(Event) error) (ReplayStats, error) {
	var st ReplayStats
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil
		}
		return st, fmt.Errorf("durable: listing segments: %w", err)
	}
	if len(segs) > 0 {
		// Refuse to parse segments written by a pre-seq-format release:
		// their records CRC-validate under this reader but decode to
		// garbage sequence numbers and types.
		if err := ensureFormat(dir, true); err != nil {
			return st, err
		}
	}
	// Seeding prev at fromSeq-1 makes the gap check cover the range
	// start too: if the segment the checkpoint hands off to is missing,
	// recovery must fail, not silently resume at a later one.
	prev := fromSeq - 1
	var events []Event
	for _, seg := range segs {
		if seg.seq < fromSeq {
			continue
		}
		if prev > 0 && seg.seq != prev+1 {
			return st, fmt.Errorf("durable: segment gap: %d follows %d", seg.seq, prev)
		}
		prev = seg.seq
		st.Segments++
		last := seg.seq == segs[len(segs)-1].seq
		torn, validOff, err := readSegment(seg.path, &events)
		if err != nil {
			return st, err
		}
		if torn {
			if !last {
				return st, fmt.Errorf("durable: torn record mid-log in segment %d", seg.seq)
			}
			// A benign crash tear is strictly a suffix: one partial
			// record and nothing after it. A valid frame anywhere past
			// the tear means the tear is mid-segment *corruption* —
			// tolerating it would silently drop (and, via OpenWAL's
			// truncation, destroy) durably-synced records.
			ok, err := validFrameAfter(seg.path, validOff)
			if err != nil {
				return st, err
			}
			if ok {
				return st, fmt.Errorf("durable: corrupt record inside segment %d (valid records follow the damage)", seg.seq)
			}
			st.Torn = true
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	if len(events) > 0 {
		st.MaxSeq = events[len(events)-1].Seq
	}
	for _, e := range events {
		if err := fn(e); err != nil {
			return st, fmt.Errorf("durable: applying %s record: %w", e.Type, err)
		}
		st.Events++
	}
	return st, nil
}

// readSegment reads one segment's valid records into *events. validOff
// is the byte length of the valid prefix (where a tear, if any, starts).
func readSegment(path string, events *[]Event) (torn bool, validOff int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		e, err := readRecord(r)
		if err == io.EOF {
			return false, validOff, nil
		}
		if err == ErrTorn {
			return true, validOff, nil // stop at the valid prefix
		}
		if err != nil {
			return false, validOff, err // real I/O failure
		}
		validOff += recordSize(e)
		*events = append(*events, e)
	}
}

// validFrameAfter reports whether any byte offset past `from` in the
// segment decodes as a CRC-valid record frame. Only called on the
// (bounded-size) final segment when a tear was found, so the sliding
// scan is affordable; a CRC false positive needs a 1-in-2^32 collision
// at some alignment of a partial record's own bytes.
func validFrameAfter(path string, from int64) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	if _, err := f.Seek(from, 0); err != nil {
		return false, err
	}
	rem, err := io.ReadAll(f)
	if err != nil {
		return false, err
	}
	for i := 1; i+headerSize < len(rem); i++ {
		n := binary.LittleEndian.Uint32(rem[i : i+4])
		if n <= seqSize || n > maxRecordSize || i+headerSize+int(n) > len(rem) {
			continue
		}
		want := binary.LittleEndian.Uint32(rem[i+4 : i+8])
		if crc32.Checksum(rem[i+headerSize:i+headerSize+int(n)], castagnoli) == want {
			return true, nil
		}
	}
	return false, nil
}
