package durable

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func ev(t Type, payload string) Event { return Event{Type: t, Payload: []byte(payload)} }

func collect(t *testing.T, dir string, fromSeq int64) ([]Event, ReplayStats) {
	t.Helper()
	var got []Event
	st, err := Replay(dir, fromSeq, func(e Event) error {
		got = append(got, Event{Type: e.Type, Payload: append([]byte(nil), e.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, st
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var want []Event
	for i := 0; i < 200; i++ {
		e := ev(Type(1+i%10), fmt.Sprintf("payload-%04d", i))
		want = append(want, e)
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, st := collect(t, dir, 0)
	if len(got) != len(want) || st.Torn {
		t.Fatalf("replayed %d events (torn=%v), want %d", len(got), st.Torn, len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("event %d mismatch: %v %q vs %v %q", i, got[i].Type, got[i].Payload, want[i].Type, want[i].Payload)
		}
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{Sync: SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := w.Append(ev(TypeFix, strings.Repeat("x", 40))); err != nil {
			t.Fatal(err)
		}
	}
	// Staging is asynchronous under SyncNone: settle the background
	// writer before reading the segment counters.
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Segments < 5 {
		t.Fatalf("expected rotation to produce several segments, got %d", st.Segments)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := collect(t, dir, 0)
	if len(got) != 100 {
		t.Fatalf("replayed %d of 100 across segments", len(got))
	}

	// Truncation: drop everything below the last segment.
	if err := func() error {
		w2, err := OpenWAL(dir, Options{Sync: SyncNone, SegmentBytes: 256})
		if err != nil {
			return err
		}
		defer w2.Close()
		return w2.RemoveSegmentsBelow(st.SegmentSeq)
	}(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 || segs[0].seq != st.SegmentSeq {
		t.Fatalf("truncation kept %v, want first seq %d", segs, st.SegmentSeq)
	}
}

func TestTornTailToleratedAndTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(ev(TypeFeedback, fmt.Sprintf("event-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Abandon()

	// Hard-cut the newest segment mid-record.
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	if err := os.Truncate(last.path, last.size-5); err != nil {
		t.Fatal(err)
	}

	got, st := collect(t, dir, 0)
	if len(got) != 9 || !st.Torn {
		t.Fatalf("got %d events torn=%v, want 9 torn=true", len(got), st.Torn)
	}

	// Reopen truncates the tear so new appends are replayable.
	w2, err := OpenWAL(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(ev(TypeFeedback, "after-crash")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, st = collect(t, dir, 0)
	if len(got) != 10 || st.Torn {
		t.Fatalf("after reopen: %d events torn=%v, want 10 torn=false", len(got), st.Torn)
	}
	if string(got[9].Payload) != "after-crash" {
		t.Fatalf("last event %q", got[9].Payload)
	}
}

func TestReplayRejectsMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{Sync: SyncAlways, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := w.Append(ev(TypeFix, strings.Repeat("y", 30))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d", len(segs))
	}
	// Flip a byte in the middle of the first segment.
	raw, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(segs[0].path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, func(Event) error { return nil }); err == nil {
		t.Fatal("mid-log corruption not rejected")
	}
}

func TestReplayRejectsCorruptionInsideFinalSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.Append(ev(TypeFeedback, fmt.Sprintf("synced-event-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	raw, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in an early record: valid, durably-synced records
	// follow the damage, so this is corruption — not a crash tear — and
	// tolerating it would silently destroy them.
	raw[len(raw)/4] ^= 0xff
	if err := os.WriteFile(segs[0].path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, func(Event) error { return nil }); err == nil {
		t.Fatal("mid-segment corruption in the final segment accepted as a benign tear")
	}
}

func TestCheckpointWriteReadValidate(t *testing.T) {
	dir := t.TempDir()
	data := []byte(`{"version":2,"hello":"world"}`)
	if err := WriteCheckpoint(dir, 7, data); err != nil {
		t.Fatal(err)
	}
	cps, err := ListCheckpoints(dir)
	if err != nil || len(cps) != 1 || cps[0].Seq != 7 {
		t.Fatalf("checkpoints: %v %v", cps, err)
	}
	got, err := ReadCheckpoint(cps[0].Path)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read: %q %v", got, err)
	}
	// Corruption is detected.
	raw, _ := os.ReadFile(cps[0].Path)
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(cps[0].Path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(cps[0].Path); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	// Retention keeps the newest.
	for seq := int64(8); seq <= 12; seq++ {
		if err := WriteCheckpoint(dir, seq, data); err != nil {
			t.Fatal(err)
		}
	}
	kept, err := RemoveCheckpointsKeep(dir, 2)
	if err != nil || len(kept) != 2 || kept[0].Seq != 11 || kept[1].Seq != 12 {
		t.Fatalf("retention kept %v (%v)", kept, err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// A failed rewrite leaves the old content and no temp litter.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		return fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("write error swallowed")
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("old content lost: %q %v", got, err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp litter: %v", entries)
	}
}

func TestSyncPolicyParseAndInterval(t *testing.T) {
	for _, s := range []string{"always", "interval", "none"} {
		p, err := ParseSyncPolicy(s)
		if err != nil || p.String() != s {
			t.Fatalf("parse %q: %v %v", s, p, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}

	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{Sync: SyncInterval, SyncEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(ev(TypeFeedback, "tick")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for w.Stats().Synced == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval sync never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALFormatMarker: a directory holding segments without the format
// marker was written by the pre-seq framing — its records CRC-validate
// under this reader but decode payload bytes as sequence numbers, so
// both Replay and OpenWAL must refuse it loudly instead of parsing
// garbage. A mismatched marker version is refused the same way.
func TestWALFormatMarker(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(ev(TypeFeedback, "marked")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	marker := filepath.Join(dir, formatFile)
	if _, err := os.Stat(marker); err != nil {
		t.Fatalf("no format marker written: %v", err)
	}

	// Simulate a pre-v2 directory: segments present, marker absent.
	if err := os.Remove(marker); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, func(Event) error { return nil }); err == nil {
		t.Fatal("replay parsed a marker-less (old-format) directory")
	}
	if _, err := OpenWAL(dir, Options{Sync: SyncNone}); err == nil {
		t.Fatal("open accepted a marker-less (old-format) directory")
	}

	// A future-format marker is refused too.
	if err := os.WriteFile(marker, []byte("9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(dir, Options{Sync: SyncNone}); err == nil {
		t.Fatal("open accepted an unsupported format version")
	}
}

// TestWALConcurrentStripedAppends is the multi-producer ordering proof
// under -race: many goroutines hammer appends for few users (each user
// pinned to a staging stripe and serialized by a per-user mutex, the
// way the System's shard locks serialize a user's mutations). After a
// clean close, the replayed log must hold (a) a gapless, strictly
// increasing sequence run 1..N in replay order — the total order the
// group-commit writer promises — and (b) every user's records in
// exactly their apply order.
func TestWALConcurrentStripedAppends(t *testing.T) {
	dir := t.TempDir()
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := filepath.Join(dir, policy.String())
			w, err := OpenWAL(dir, Options{Sync: policy, SyncEvery: time.Millisecond, Stripes: 8, SegmentBytes: 16 << 10})
			if err != nil {
				t.Fatal(err)
			}
			const (
				goroutines = 16
				users      = 3 // users ≪ goroutines: maximal same-stripe contention
				perG       = 200
			)
			var userMu [users]sync.Mutex
			applied := make([][]string, users)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						u := (g + i) % users
						// The caller's half of the ordering contract: a
						// user's appends are serialized, and the apply-order
						// record is taken inside the same critical section.
						userMu[u].Lock()
						payload := fmt.Sprintf("u%d-g%d-i%d", u, g, i)
						if err := w.AppendTo(uint32(u), ev(TypeFeedback, payload)); err != nil {
							userMu[u].Unlock()
							t.Errorf("append: %v", err)
							return
						}
						applied[u] = append(applied[u], payload)
						userMu[u].Unlock()
					}
				}(g)
			}
			wg.Wait()
			// Close drains whatever the background writer has not caught
			// up with; the group-commit counters are complete only after.
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			st := w.Stats()

			var lastSeq uint64
			replayed := make([][]string, users)
			n := 0
			if _, err := Replay(dir, 0, func(e Event) error {
				if e.Seq != lastSeq+1 {
					return fmt.Errorf("sequence gap or misorder: %d follows %d", e.Seq, lastSeq)
				}
				lastSeq = e.Seq
				var u, g, i int
				if _, err := fmt.Sscanf(string(e.Payload), "u%d-g%d-i%d", &u, &g, &i); err != nil {
					return fmt.Errorf("payload %q: %v", e.Payload, err)
				}
				replayed[u] = append(replayed[u], string(e.Payload))
				n++
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if want := goroutines * perG; n != want {
				t.Fatalf("replayed %d of %d records", n, want)
			}
			for u := range applied {
				if len(applied[u]) != len(replayed[u]) {
					t.Fatalf("user %d: %d applied vs %d replayed", u, len(applied[u]), len(replayed[u]))
				}
				for i := range applied[u] {
					if applied[u][i] != replayed[u][i] {
						t.Fatalf("user %d record %d: applied %q, replayed %q", u, i, applied[u][i], replayed[u][i])
					}
				}
			}
			if st.GroupCommits == 0 || st.GroupCommitRecords != int64(goroutines*perG) {
				t.Fatalf("group-commit stats: %+v", st)
			}
			if policy == SyncAlways && st.Synced >= st.Appended {
				t.Fatalf("no group-commit amortization: %d fsyncs for %d appends", st.Synced, st.Appended)
			}
		})
	}
}

// TestGroupCommitTornTail exercises the crash contract of the staged
// group-commit path: concurrent striped producers append, the log is
// settled and then hard-cut mid-record. Replay must tolerate exactly
// that tear, and what survives must be a causally consistent prefix —
// for every user, an unbroken prefix of their applied records (the
// seq-sorted drain guarantees a lost suffix never keeps a record while
// dropping one it depends on).
func TestGroupCommitTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{Sync: SyncNone, Stripes: 4})
	if err != nil {
		t.Fatal(err)
	}
	const users = 4
	var userMu [users]sync.Mutex
	applied := make([][]uint64, users)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				u := (g + i) % users
				userMu[u].Lock()
				e := ev(TypeFix, fmt.Sprintf("u%d payload %d-%d", u, g, i))
				if err := w.AppendTo(uint32(u), e); err != nil {
					userMu[u].Unlock()
					t.Errorf("append: %v", err)
					return
				}
				applied[u] = append(applied[u], 0) // count only; seq filled on replay
				userMu[u].Unlock()
			}
		}(g)
	}
	wg.Wait()
	if err := w.Sync(); err != nil { // settle the writer so the tail is on disk
		t.Fatal(err)
	}
	w.Abandon()

	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	if err := os.Truncate(last.path, last.size-9); err != nil {
		t.Fatal(err)
	}

	perUser := make([]int, users)
	var lastSeq uint64
	n := 0
	st, err := Replay(dir, 0, func(e Event) error {
		if e.Seq <= lastSeq {
			return fmt.Errorf("misordered replay: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		var u int
		if _, err := fmt.Sscanf(string(e.Payload), "u%d", &u); err != nil {
			return fmt.Errorf("payload %q: %v", e.Payload, err)
		}
		perUser[u]++
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Torn {
		t.Fatal("hard-cut tail not reported as torn")
	}
	if n != 8*100-1 {
		t.Fatalf("replayed %d records, want all but the torn one (%d)", n, 8*100-1)
	}
	total := 0
	for u := range perUser {
		if perUser[u] > len(applied[u]) {
			t.Fatalf("user %d: replayed %d > applied %d", u, perUser[u], len(applied[u]))
		}
		total += perUser[u]
	}
	if total != n {
		t.Fatalf("per-user totals %d != replayed %d", total, n)
	}
}

// BenchmarkWALAppend measures the sustained append overhead a System
// write path pays per mutation, with the server's default fsync policy
// (-wal-sync=interval): the record is framed, CRC'd and buffered; fsync
// happens on the background tick. The acceptance bar is < 2µs/op.
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	w, err := OpenWAL(dir, Options{Sync: SyncInterval, SyncEvery: 50 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := []byte(`{"UserID":"user-0042","ItemID":"clip-000123","Kind":1,"At":"2017-03-21T08:30:00Z","Categories":{"traffic":0.61,"regional":0.39}}`)
	e := Event{Type: TypeSkip, Payload: payload}
	b.SetBytes(recordSize(e))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(e); err != nil {
			b.Fatal(err)
		}
	}
	// The append path records into its own histogram; report the tail the
	// benchmark run produced so the perf trajectory tracks p99, not just
	// the mean.
	b.ReportMetric(float64(w.AppendHistogram().Snapshot().Quantile(0.99)), "p99-ns/op")
}

// TestFsyncDegradedMode proves the degraded-disk fault injection: the
// stall shows up in every fsync (and therefore in a SyncAlways append's
// commit wait), the stats report the mode, records stay durable, and
// clearing the stall restores the healthy path. Crucially the log's
// Err() stays nil throughout — degraded is not dead.
func TestFsyncDegradedMode(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const stall = 5 * time.Millisecond
	w.SetFsyncDegraded(stall)
	if got := w.FsyncDegraded(); got != stall {
		t.Fatalf("FsyncDegraded = %v, want %v", got, stall)
	}
	start := time.Now()
	if err := w.Append(Event{Type: TypeFeedback, Payload: []byte(`{"a":1}`)}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < stall {
		t.Fatalf("degraded SyncAlways append returned in %v, want >= %v", elapsed, stall)
	}
	if err := w.Err(); err != nil {
		t.Fatalf("degraded log reports dead: %v", err)
	}
	st := w.Stats()
	if st.DegradedFsyncMillis != 5 {
		t.Fatalf("DegradedFsyncMillis = %v, want 5", st.DegradedFsyncMillis)
	}
	if st.Fsync.P50Micros < float64(stall.Microseconds()) {
		t.Fatalf("fsync p50 %vµs does not reflect the %v stall", st.Fsync.P50Micros, stall)
	}

	w.SetFsyncDegraded(0)
	if w.FsyncDegraded() != 0 {
		t.Fatal("stall not cleared")
	}
	if err := w.Append(Event{Type: TypeFeedback, Payload: []byte(`{"a":2}`)}); err != nil {
		t.Fatal(err)
	}

	// Both appends — degraded and healthy — replay back.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	st2, err := Replay(dir, 0, func(Event) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || st2.Events != 2 {
		t.Fatalf("replayed %d events, want 2", n)
	}
}
