package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes the output of write to path with crash-safe
// atomicity: the bytes land in a temp file in the same directory, are
// fsynced, and only then renamed over path (followed by a directory
// fsync so the rename itself is durable). A crash at any point leaves
// either the old file or the new one, never a partial write — which is
// the property every snapshot writer in this repo must have, since a
// snapshot is often the only copy of the state.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("durable: creating temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("durable: fsync temp file: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("durable: renaming into place: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems refuse directory fsync; the rename is still
		// atomic, only its durability window widens.
		return nil
	}
	return nil
}

const (
	checkpointPrefix = "checkpoint-"
	checkpointSuffix = ".snap"
)

// checkpointName renders the file name of the checkpoint whose snapshot
// covers every WAL segment below seq.
func checkpointName(seq int64) string {
	return fmt.Sprintf("%s%016d%s", checkpointPrefix, seq, checkpointSuffix)
}

// CheckpointInfo is one checkpoint file on disk. Seq is the WAL segment
// the snapshot is current up to: recovery restores the snapshot and
// replays segments >= Seq.
type CheckpointInfo struct {
	Seq  int64
	Path string
}

// ListCheckpoints returns the checkpoints in dir, ascending by sequence.
func ListCheckpoints(dir string) ([]CheckpointInfo, error) {
	files, err := listNumbered(dir, checkpointPrefix, checkpointSuffix)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	cps := make([]CheckpointInfo, len(files))
	for i, f := range files {
		cps[i] = CheckpointInfo{Seq: f.seq, Path: f.path}
	}
	return cps, nil
}

// WriteCheckpoint atomically writes a checkpoint file: the snapshot
// bytes wrapped in the same length+CRC frame as a WAL record, so
// ReadCheckpoint can prove integrity before anything is restored.
func WriteCheckpoint(dir string, seq int64, data []byte) error {
	if int64(len(data)) > math.MaxUint32 {
		// The frame length is uint32; wrapping it would write a file
		// that validates as corrupt on every future boot. Refuse loudly
		// at write time instead.
		return fmt.Errorf("durable: snapshot too large for checkpoint frame (%d bytes)", len(data))
	}
	return WriteFileAtomic(filepath.Join(dir, checkpointName(seq)), func(w io.Writer) error {
		var hdr [headerSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(data)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(data, castagnoli))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		_, err := w.Write(data)
		return err
	})
}

// ReadCheckpoint loads and CRC-validates a checkpoint file, returning
// the snapshot bytes.
func ReadCheckpoint(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < headerSize {
		return nil, fmt.Errorf("%w: checkpoint %s too short", ErrTorn, filepath.Base(path))
	}
	n := binary.LittleEndian.Uint32(raw[0:4])
	want := binary.LittleEndian.Uint32(raw[4:8])
	body := raw[headerSize:]
	if uint32(len(body)) != n || crc32.Checksum(body, castagnoli) != want {
		return nil, fmt.Errorf("%w: checkpoint %s failed validation", ErrTorn, filepath.Base(path))
	}
	return body, nil
}

// Initialized reports whether dir holds at least one checkpoint — the
// marker that a deployment's initial state was fully persisted. A
// directory with WAL segments but no checkpoint is a boot that crashed
// before its first checkpoint (e.g. mid-preload); treating its partial
// log as recoverable state would resurrect a half-initialized world.
func Initialized(dir string) (bool, error) {
	cps, err := ListCheckpoints(dir)
	return len(cps) > 0, err
}

// RemoveSegments deletes every WAL segment in dir. Only valid while no
// WAL is open there; the server uses it to reset an uninitialized
// directory before redoing the preload.
func RemoveSegments(dir string) error {
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, s := range segs {
		if err := os.Remove(s.path); err != nil {
			return err
		}
	}
	return nil
}

// RemoveCheckpointsKeep deletes all but the newest keep checkpoints and
// returns the surviving set (ascending). The oldest survivor's Seq is
// the safe WAL truncation bound: segments below it serve no retained
// checkpoint.
func RemoveCheckpointsKeep(dir string, keep int) ([]CheckpointInfo, error) {
	if keep < 1 {
		keep = 1
	}
	cps, err := ListCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	for len(cps) > keep {
		if err := os.Remove(cps[0].Path); err != nil {
			return cps, err
		}
		cps = cps[1:]
	}
	return cps, nil
}
