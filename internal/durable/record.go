// Package durable is the durability subsystem of the PPHCR server: an
// append-only, segment-rotated write-ahead log of typed mutation events,
// atomic checkpoint files holding full-system snapshots, and the replay
// machinery that reconstructs the latest state after a crash (newest
// valid checkpoint + WAL tail). The event payloads are opaque to this
// package — the root pphcr package owns their schemas and the mapping
// back onto System entry points.
//
// On-disk record framing (little endian):
//
//	| length uint32 | crc32c uint32 | type byte | payload ... |
//
// length counts the type byte plus the payload; the CRC (Castagnoli)
// covers the same bytes. A record is valid only if it is complete and
// its CRC matches, so a crash mid-write leaves a detectable torn tail
// rather than silently corrupt state.
package durable

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Type tags one WAL event with the mutation it records.
type Type uint8

// Event types, one per System write-path entry point. Skip and Dislike
// are split out of the generic feedback event so the log is
// self-describing about the negative signals the paper's skip flows
// generate.
const (
	TypeRegister        Type = 1  // user registered (payload: profile)
	TypeIngest          Type = 2  // content ingested (payload: classified item)
	TypeFix             Type = 3  // GPS fix recorded
	TypeFeedback        Type = 4  // listen/like feedback event
	TypeSkip            Type = 5  // skip feedback event
	TypeDislike         Type = 6  // dislike feedback event
	TypeCompact         Type = 7  // tracking compaction ran for a user
	TypeFeedbackCompact Type = 8  // feedback log folded into the baseline
	TypeInject          Type = 9  // editorial item queued for a user
	TypeConsume         Type = 10 // pending injections consumed
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case TypeRegister:
		return "register"
	case TypeIngest:
		return "ingest"
	case TypeFix:
		return "fix"
	case TypeFeedback:
		return "feedback"
	case TypeSkip:
		return "skip"
	case TypeDislike:
		return "dislike"
	case TypeCompact:
		return "compact"
	case TypeFeedbackCompact:
		return "feedback-compact"
	case TypeInject:
		return "inject"
	case TypeConsume:
		return "consume"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Event is one durable mutation record.
type Event struct {
	Type    Type
	Payload []byte
}

const (
	headerSize = 8 // uint32 length + uint32 crc
	// maxRecordSize guards decoding against garbage lengths: no single
	// mutation event comes anywhere near it.
	maxRecordSize = 64 << 20
)

// castagnoli is the CRC32-C table (hardware accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTorn marks an incomplete or checksum-failed record at the point the
// reader stopped — the expected state of the final record after a crash
// mid-append.
var ErrTorn = errors.New("durable: torn record")

// appendRecord appends the framed encoding of e to dst.
func appendRecord(dst []byte, e Event) []byte {
	n := 1 + len(e.Payload)
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	crc := crc32.Update(0, castagnoli, []byte{byte(e.Type)})
	crc = crc32.Update(crc, castagnoli, e.Payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	dst = append(dst, byte(e.Type))
	return append(dst, e.Payload...)
}

// recordSize returns the framed size of e.
func recordSize(e Event) int64 { return int64(headerSize + 1 + len(e.Payload)) }

// readRecord decodes the next record from r. It returns io.EOF at a
// clean segment end, ErrTorn when the stream holds a partial or
// checksum-failed record, and the underlying error for a real I/O
// failure — an EIO during recovery must fail it loudly, not be
// mistaken for a benign crash tear and truncated away.
func readRecord(r *bufio.Reader) (Event, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return Event{}, ErrTorn // partial header
		}
		return Event{}, fmt.Errorf("durable: reading record header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if n == 0 || n > maxRecordSize {
		return Event{}, ErrTorn
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Event{}, ErrTorn // partial body
		}
		return Event{}, fmt.Errorf("durable: reading record body: %w", err)
	}
	if crc32.Checksum(body, castagnoli) != want {
		return Event{}, ErrTorn
	}
	return Event{Type: Type(body[0]), Payload: body[1:]}, nil
}
