// Package durable is the durability subsystem of the PPHCR server: an
// append-only, segment-rotated write-ahead log of typed mutation events,
// atomic checkpoint files holding full-system snapshots, and the replay
// machinery that reconstructs the latest state after a crash (newest
// valid checkpoint + WAL tail). The event payloads are opaque to this
// package — the root pphcr package owns their schemas and the mapping
// back onto System entry points.
//
// On-disk record framing (little endian):
//
//	| length uint32 | crc32c uint32 | seq uint64 | type byte | payload ... |
//
// length counts the sequence number, the type byte and the payload; the
// CRC (Castagnoli) covers the same bytes. A record is valid only if it
// is complete and its CRC matches, so a crash mid-write leaves a
// detectable torn tail rather than silently corrupt state.
//
// seq is the global append sequence number the WAL stamps into every
// record. The log is multi-producer (per-stripe staging buffers drained
// by one background writer), so the physical record order on disk is
// only approximately the commit order; Replay totally orders by seq,
// and per-user order is exact because every caller serializes a user's
// mutations before staging them (see the WAL ordering contract).
package durable

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Type tags one WAL event with the mutation it records.
type Type uint8

// Event types, one per System write-path entry point. Skip and Dislike
// are split out of the generic feedback event so the log is
// self-describing about the negative signals the paper's skip flows
// generate.
const (
	TypeRegister        Type = 1  // user registered (payload: profile)
	TypeIngest          Type = 2  // content ingested (payload: classified item)
	TypeFix             Type = 3  // GPS fix recorded
	TypeFeedback        Type = 4  // listen/like feedback event
	TypeSkip            Type = 5  // skip feedback event
	TypeDislike         Type = 6  // dislike feedback event
	TypeCompact         Type = 7  // tracking compaction ran for a user
	TypeFeedbackCompact Type = 8  // feedback log folded into the baseline
	TypeInject          Type = 9  // editorial item queued for a user
	TypeConsume         Type = 10 // pending injections consumed
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case TypeRegister:
		return "register"
	case TypeIngest:
		return "ingest"
	case TypeFix:
		return "fix"
	case TypeFeedback:
		return "feedback"
	case TypeSkip:
		return "skip"
	case TypeDislike:
		return "dislike"
	case TypeCompact:
		return "compact"
	case TypeFeedbackCompact:
		return "feedback-compact"
	case TypeInject:
		return "inject"
	case TypeConsume:
		return "consume"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Event is one durable mutation record. Seq is assigned by the WAL on
// append (any caller-set value is overwritten) and populated on replay;
// it totally orders the log.
type Event struct {
	Seq     uint64
	Type    Type
	Payload []byte
}

const (
	headerSize = 8 // uint32 length + uint32 crc
	seqSize    = 8 // uint64 sequence number, first body field
	// maxRecordSize guards decoding against garbage lengths: no single
	// mutation event comes anywhere near it.
	maxRecordSize = 64 << 20
)

// castagnoli is the CRC32-C table (hardware accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTorn marks an incomplete or checksum-failed record at the point the
// reader stopped — the expected state of the final record after a crash
// mid-append.
var ErrTorn = errors.New("durable: torn record")

// appendRecord appends the framed encoding of e (with e.Seq stamped
// into the header) to dst.
func appendRecord(dst []byte, e Event) []byte {
	n := seqSize + 1 + len(e.Payload)
	var hdr [headerSize + seqSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	binary.LittleEndian.PutUint64(hdr[8:16], e.Seq)
	crc := crc32.Update(0, castagnoli, hdr[8:16])
	crc = crc32.Update(crc, castagnoli, []byte{byte(e.Type)})
	crc = crc32.Update(crc, castagnoli, e.Payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	dst = append(dst, byte(e.Type))
	return append(dst, e.Payload...)
}

// recordSize returns the framed size of e.
func recordSize(e Event) int64 { return int64(headerSize + seqSize + 1 + len(e.Payload)) }

// readRecord decodes the next record from r. It returns io.EOF at a
// clean segment end, ErrTorn when the stream holds a partial or
// checksum-failed record, and the underlying error for a real I/O
// failure — an EIO during recovery must fail it loudly, not be
// mistaken for a benign crash tear and truncated away.
func readRecord(r *bufio.Reader) (Event, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return Event{}, ErrTorn // partial header
		}
		return Event{}, fmt.Errorf("durable: reading record header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if n <= seqSize || n > maxRecordSize {
		return Event{}, ErrTorn
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Event{}, ErrTorn // partial body
		}
		return Event{}, fmt.Errorf("durable: reading record body: %w", err)
	}
	if crc32.Checksum(body, castagnoli) != want {
		return Event{}, ErrTorn
	}
	return Event{
		Seq:     binary.LittleEndian.Uint64(body[0:seqSize]),
		Type:    Type(body[seqSize]),
		Payload: body[seqSize+1:],
	}, nil
}
