package durable

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects when the WAL calls fsync.
type SyncPolicy int

// Sync policies, in decreasing durability order. SyncAlways fsyncs every
// append (no completed mutation is ever lost); SyncInterval flushes and
// fsyncs on a background tick, bounding loss to one interval; SyncNone
// leaves flushing to the OS (and to Close/Rotate).
const (
	SyncAlways SyncPolicy = iota
	SyncInterval
	SyncNone
)

// String returns the policy name (the -wal-sync flag values).
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseSyncPolicy parses a -wal-sync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("durable: unknown sync policy %q (want always, interval or none)", s)
	}
}

// ErrDeferredSync reports that an *earlier* background fsync failed.
// The record whose Append returned it WAS written to the log (and the
// unsynced data is retried on the next tick) — callers that sequence
// work after the append (the emit-then-apply ingest path) must treat
// the record as logged and proceed, or log and state diverge.
var ErrDeferredSync = errors.New("durable: deferred background fsync failed")

// Options parameterizes a WAL.
type Options struct {
	// SegmentBytes is the rotation threshold. Default 8 MiB.
	SegmentBytes int64
	// Sync is the fsync policy. Default SyncAlways.
	Sync SyncPolicy
	// SyncEvery is the SyncInterval tick. Default 50ms.
	SyncEvery time.Duration
}

func (o *Options) defaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 50 * time.Millisecond
	}
}

const (
	segmentPrefix = "wal-"
	segmentSuffix = ".log"
)

// segmentName renders the file name of segment seq.
func segmentName(seq int64) string {
	return fmt.Sprintf("%s%016d%s", segmentPrefix, seq, segmentSuffix)
}

// numberedFile is one <prefix>NNN<suffix> file in a data directory —
// the naming scheme shared by WAL segments and checkpoints.
type numberedFile struct {
	seq  int64
	path string
	size int64
}

// segmentInfo is one WAL segment on disk.
type segmentInfo = numberedFile

// listNumbered returns dir's <prefix>NNN<suffix> files ascending by
// sequence number, skipping entries that do not parse.
func listNumbered(dir, prefix, suffix string) ([]numberedFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []numberedFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		seq, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
		if err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		out = append(out, numberedFile{seq: seq, path: filepath.Join(dir, name), size: info.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// listSegments returns the WAL segments in dir, ascending by sequence.
func listSegments(dir string) ([]segmentInfo, error) {
	return listNumbered(dir, segmentPrefix, segmentSuffix)
}

// validPrefixLen scans a segment and returns the byte length of its
// valid record prefix — everything after it is a torn tail. Real I/O
// failures propagate; they must not be mistaken for a tear and
// truncated away.
func validPrefixLen(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var off int64
	for {
		e, err := readRecord(r)
		if err == io.EOF || err == ErrTorn {
			return off, nil // valid prefix ends here
		}
		if err != nil {
			return 0, err
		}
		off += recordSize(e)
	}
}

// WALStats are the log's counters, reported on /stats.
type WALStats struct {
	// Appended counts records written since open.
	Appended int64 `json:"appended"`
	// Synced counts fsync calls since open.
	Synced int64 `json:"synced"`
	// Bytes counts record bytes written since open.
	Bytes int64 `json:"bytes"`
	// Segments is the number of live segment files.
	Segments int64 `json:"segments"`
	// SegmentSeq is the sequence number of the active segment.
	SegmentSeq int64 `json:"segment_seq"`
	// Policy is the fsync policy name.
	Policy string `json:"policy"`
}

// WAL is the append-only, segment-rotated write-ahead log. It is safe
// for concurrent use.
type WAL struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	seq      int64 // active segment
	firstSeq int64 // oldest retained segment
	size     int64 // bytes in the active segment
	scratch  []byte
	dirty    bool  // bytes written since last fsync
	err      error // sticky async-fsync failure, surfaced by the next Append
	closed   bool

	appended int64
	bytes    int64
	synced   atomic.Int64 // fsyncs may complete outside mu

	stop chan struct{}
	done chan struct{}
}

// OpenWAL opens (or creates) the log in dir, truncating any torn tail
// left in the newest segment by a crash, and continues appending to it.
// Callers that need the torn records replayed must run Replay before
// OpenWAL truncates them away — Open is destructive to the torn tail by
// design (an append after a torn record would otherwise be unreachable
// to every future replay, which stops at the tear).
func OpenWAL(dir string, opts Options) (*WAL, error) {
	opts.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: creating wal dir: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: listing segments: %w", err)
	}
	w := &WAL{dir: dir, opts: opts, seq: 1, firstSeq: 1}
	if len(segs) == 0 {
		if err := w.createSegment(1); err != nil {
			return nil, err
		}
	} else {
		last := segs[len(segs)-1]
		valid, err := validPrefixLen(last.path)
		if err != nil {
			return nil, fmt.Errorf("durable: scanning %s: %w", last.path, err)
		}
		f, err := os.OpenFile(last.path, os.O_WRONLY, 0)
		if err != nil {
			return nil, fmt.Errorf("durable: opening segment: %w", err)
		}
		if valid < last.size {
			if err := f.Truncate(valid); err != nil {
				f.Close()
				return nil, fmt.Errorf("durable: truncating torn tail: %w", err)
			}
		}
		if _, err := f.Seek(valid, 0); err != nil {
			f.Close()
			return nil, err
		}
		w.f = f
		w.bw = bufio.NewWriterSize(f, 1<<16)
		w.seq = last.seq
		w.firstSeq = segs[0].seq
		w.size = valid
	}
	if opts.Sync == SyncInterval {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.syncLoop(w.stop, w.done)
	}
	return w, nil
}

func (w *WAL) createSegment(seq int64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(seq)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("durable: creating segment: %w", err)
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.seq = seq
	w.size = 0
	return nil
}

// syncLoop receives its channels as arguments (not via the struct
// fields) because stopSyncLoop nils the fields under the mutex while
// this goroutine selects without it.
func (w *WAL) syncLoop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(w.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			w.Sync()
		}
	}
}

// Append writes one record. Under SyncAlways it is durable on return;
// under SyncInterval/SyncNone it is buffered and a crash may lose it.
func (w *WAL) Append(e Event) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("durable: append on closed WAL")
	}
	// A sticky async-fsync failure is surfaced on the next append — but
	// the current record is still written first: its mutation is already
	// applied in memory, so dropping it would punch a hole in the log
	// that replay cannot see.
	sticky := w.err
	w.err = nil
	w.scratch = appendRecord(w.scratch[:0], e)
	if _, err := w.bw.Write(w.scratch); err != nil {
		return fmt.Errorf("durable: appending record: %w", err)
	}
	n := int64(len(w.scratch))
	w.size += n
	w.bytes += n
	w.appended++
	w.dirty = true
	if w.opts.Sync == SyncAlways {
		if err := w.syncLocked(); err != nil {
			return err
		}
	}
	if w.size >= w.opts.SegmentBytes {
		// Size-triggered rotation retires the old segment with an
		// asynchronous fsync under the interval/none policies: their
		// durability promise is already tick-bounded, so the write path
		// must not stall for a multi-megabyte writeback. The explicit
		// Rotate() used by checkpoints stays fully synchronous.
		if _, err := w.rotateLocked(w.opts.Sync == SyncAlways); err != nil {
			return err
		}
	}
	if sticky != nil {
		return fmt.Errorf("%w: %v", ErrDeferredSync, sticky)
	}
	return nil
}

// syncLocked flushes and fsyncs unconditionally — not gated on dirty.
// The out-of-lock Sync clears dirty before its fsync lands, so a
// concurrent Rotate/Close that trusted the flag could close the file
// with that fsync still pending; paying an occasional no-op fsync here
// is what makes "retired segments are durable before close" true.
func (w *WAL) syncLocked() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("durable: flushing: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: fsync: %w", err)
	}
	w.dirty = false
	w.synced.Add(1)
	return nil
}

// Sync flushes buffered records and fsyncs the active segment. The
// fsync happens outside the append lock (group-commit style): writers
// keep appending into the buffer while the disk persists what was
// flushed, so the background sync tick never stalls the write paths
// for the duration of a writeback.
func (w *WAL) Sync() error {
	w.mu.Lock()
	if w.closed || !w.dirty {
		w.mu.Unlock()
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		w.mu.Unlock()
		return fmt.Errorf("durable: flushing: %w", err)
	}
	w.dirty = false
	f := w.f
	w.mu.Unlock()
	if err := f.Sync(); err != nil {
		if errors.Is(err, os.ErrClosed) {
			// A concurrent synchronous rotation retired this segment;
			// syncLocked fsyncs unconditionally before the close, so the
			// flushed data is durable without this (uncounted) fsync.
			return nil
		}
		// Any other failure (ENOSPC, EIO) must not vanish into the sync
		// loop: re-mark the segment dirty so the next tick retries, and
		// leave a sticky error for the next Append to surface.
		err = fmt.Errorf("durable: fsync: %w", err)
		w.mu.Lock()
		w.dirty = true
		if w.err == nil {
			w.err = err
		}
		w.mu.Unlock()
		return err
	}
	w.synced.Add(1)
	return nil
}

// Rotate closes the active segment (flushed and fsynced) and starts a
// new one, returning the new segment's sequence number. The checkpointer
// calls it inside the mutation barrier so the new segment is the exact
// WAL position its snapshot covers up to.
func (w *WAL) Rotate() (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("durable: rotate on closed WAL")
	}
	return w.rotateLocked(true)
}

func (w *WAL) rotateLocked(syncOld bool) (int64, error) {
	if syncOld {
		if err := w.syncLocked(); err != nil {
			return 0, err
		}
		if err := w.f.Close(); err != nil {
			return 0, err
		}
	} else {
		if err := w.bw.Flush(); err != nil {
			return 0, fmt.Errorf("durable: flushing: %w", err)
		}
		w.dirty = false
		go func(f *os.File) {
			err := f.Sync()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				w.mu.Lock()
				if w.err == nil {
					w.err = fmt.Errorf("durable: retiring segment: %w", err)
				}
				w.mu.Unlock()
				return
			}
			w.synced.Add(1)
		}(w.f)
	}
	if err := w.createSegment(w.seq + 1); err != nil {
		return 0, err
	}
	return w.seq, nil
}

// RemoveSegmentsBelow deletes segments with sequence < seq (never the
// active one). The checkpointer calls it after its snapshot is durable.
func (w *WAL) RemoveSegmentsBelow(seq int64) error {
	w.mu.Lock()
	if seq > w.seq {
		seq = w.seq
	}
	w.mu.Unlock()
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s.seq >= seq {
			continue
		}
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("durable: removing segment %d: %w", s.seq, err)
		}
	}
	w.mu.Lock()
	if seq > w.firstSeq {
		w.firstSeq = seq
	}
	w.mu.Unlock()
	return nil
}

// Stats snapshots the counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{
		Appended:   w.appended,
		Synced:     w.synced.Load(),
		Bytes:      w.bytes,
		Segments:   w.seq - w.firstSeq + 1,
		SegmentSeq: w.seq,
		Policy:     w.opts.Sync.String(),
	}
}

// Close flushes, fsyncs and closes the log.
func (w *WAL) Close() error {
	w.stopSyncLoop()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.syncLocked(); err != nil {
		return err
	}
	return w.f.Close()
}

// Abandon drops the log without flushing buffered records — the
// crash-simulation path used by tests and the load generator's -restart
// workload: whatever the OS has not been handed is lost, exactly as in
// a process kill.
func (w *WAL) Abandon() {
	w.stopSyncLoop()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	w.f.Close()
}

func (w *WAL) stopSyncLoop() {
	w.mu.Lock()
	stop, done := w.stop, w.done
	w.stop = nil
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
