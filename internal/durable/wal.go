package durable

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pphcr/internal/obs"
)

// SyncPolicy selects when the WAL calls fsync.
type SyncPolicy int

// Sync policies, in decreasing durability order. SyncAlways makes every
// Append durable before it returns — appenders park on a commit notify
// and one group-commit fsync retires every record staged while the
// previous fsync was in flight. SyncInterval flushes and fsyncs on a
// background tick, bounding loss to one interval; SyncNone leaves
// flushing to the OS (and to Rotate/Close).
const (
	SyncAlways SyncPolicy = iota
	SyncInterval
	SyncNone
)

// String returns the policy name (the -wal-sync flag values).
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseSyncPolicy parses a -wal-sync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("durable: unknown sync policy %q (want always, interval or none)", s)
	}
}

// ErrDeferredSync reports that an *earlier* background fsync failed.
// The record whose Append returned it WAS staged for the log (and the
// unsynced data is retried on the next tick) — callers that sequence
// work after the append (the emit-then-apply ingest path) must treat
// the record as logged and proceed, or log and state diverge.
var ErrDeferredSync = errors.New("durable: deferred background fsync failed")

// ErrClosed is returned by Append on a closed (or abandoned) WAL.
var ErrClosed = errors.New("durable: append on closed WAL")

// Options parameterizes a WAL.
type Options struct {
	// SegmentBytes is the rotation threshold. Default 8 MiB.
	SegmentBytes int64
	// Sync is the fsync policy. Default SyncAlways.
	Sync SyncPolicy
	// SyncEvery is the SyncInterval tick. Default 50ms.
	SyncEvery time.Duration
	// Stripes is the number of staging stripes (rounded up to a power of
	// two). Callers spread appends across stripes with AppendTo so
	// concurrent producers contend only per stripe. Default 32 — the
	// same count as the System's user shards, so the shard index maps
	// 1:1 onto a staging stripe.
	Stripes int
	// InitialSeq, when nonzero, is the highest record sequence the
	// caller knows is on disk (a recovery that just ran Replay has it
	// in ReplayStats.MaxSeq). It spares OpenWAL re-reading every
	// retained segment; the final segment is still scanned for
	// torn-tail truncation and its maximum still wins if larger.
	InitialSeq uint64
}

func (o *Options) defaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 50 * time.Millisecond
	}
	if o.Stripes <= 0 {
		o.Stripes = 32
	}
	n := 1
	for n < o.Stripes {
		n <<= 1
	}
	o.Stripes = n
}

const (
	segmentPrefix = "wal-"
	segmentSuffix = ".log"

	// formatFile marks the record framing version of a WAL directory.
	// Version 2 added the seq field to the record body. The marker is
	// what makes an old-format directory fail loudly: a v1 record's CRC
	// covers its whole body, so it still validates under the v2 reader —
	// which would then silently read payload bytes as a sequence number.
	formatFile    = "wal-format"
	formatVersion = "2"
)

// ensureFormat validates the directory's WAL format marker, creating it
// for a directory that has no segments yet. A directory with segments
// but no marker was written by a pre-v2 release and must not be parsed.
func ensureFormat(dir string, haveSegments bool) error {
	path := filepath.Join(dir, formatFile)
	b, err := os.ReadFile(path)
	if err == nil {
		if got := strings.TrimSpace(string(b)); got != formatVersion {
			return fmt.Errorf("durable: unsupported WAL format %q in %s (this release reads format %s)", got, dir, formatVersion)
		}
		return nil
	}
	if !os.IsNotExist(err) {
		return err
	}
	if haveSegments {
		return fmt.Errorf("durable: %s holds WAL segments without a format marker — written by a pre-sequence-format release; recover with that release or start from a fresh directory", dir)
	}
	// The marker must be at least as durable as the first fsynced
	// record, or a crash could persist the segments while losing the
	// marker — and recovery would then refuse a perfectly valid log.
	return WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, formatVersion+"\n")
		return err
	})
}

// segmentName renders the file name of segment seq.
func segmentName(seq int64) string {
	return fmt.Sprintf("%s%016d%s", segmentPrefix, seq, segmentSuffix)
}

// numberedFile is one <prefix>NNN<suffix> file in a data directory —
// the naming scheme shared by WAL segments and checkpoints.
type numberedFile struct {
	seq  int64
	path string
	size int64
}

// segmentInfo is one WAL segment on disk.
type segmentInfo = numberedFile

// listNumbered returns dir's <prefix>NNN<suffix> files ascending by
// sequence number, skipping entries that do not parse.
func listNumbered(dir, prefix, suffix string) ([]numberedFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []numberedFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		seq, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
		if err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		out = append(out, numberedFile{seq: seq, path: filepath.Join(dir, name), size: info.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// listSegments returns the WAL segments in dir, ascending by sequence.
func listSegments(dir string) ([]segmentInfo, error) {
	return listNumbered(dir, segmentPrefix, segmentSuffix)
}

// validPrefixLen scans a segment and returns the byte length of its
// valid record prefix and the highest record sequence number it holds —
// everything after the prefix is a torn tail. Real I/O failures
// propagate; they must not be mistaken for a tear and truncated away.
func validPrefixLen(path string) (int64, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var off int64
	var maxSeq uint64
	for {
		e, err := readRecord(r)
		if err == io.EOF || err == ErrTorn {
			return off, maxSeq, nil // valid prefix ends here
		}
		if err != nil {
			return 0, 0, err
		}
		off += recordSize(e)
		if e.Seq > maxSeq {
			maxSeq = e.Seq
		}
	}
}

// WALStats are the log's counters, reported on /stats.
type WALStats struct {
	// Appended counts records staged since open.
	Appended int64 `json:"appended"`
	// Synced counts fsync calls since open.
	Synced int64 `json:"synced"`
	// Bytes counts record bytes staged since open.
	Bytes int64 `json:"bytes"`
	// Segments is the number of live segment files.
	Segments int64 `json:"segments"`
	// SegmentSeq is the sequence number of the active segment.
	SegmentSeq int64 `json:"segment_seq"`
	// Policy is the fsync policy name.
	Policy string `json:"policy"`
	// GroupCommits counts drain cycles that retired at least one staged
	// record; GroupCommitRecords is the total they retired. Their ratio
	// (MeanCommitBatch) is the group-commit amortization: how many
	// appends one pass of the background writer — and, under SyncAlways,
	// one fsync — retires.
	GroupCommits       int64   `json:"group_commits"`
	GroupCommitRecords int64   `json:"group_commit_records"`
	MeanCommitBatch    float64 `json:"mean_commit_batch"`
	// MaxCommitBatch is the largest single drain.
	MaxCommitBatch int64 `json:"max_commit_batch"`
	// Staged is the number of records currently staged and not yet
	// handed to the segment writer.
	Staged int64 `json:"staged"`
	// Stripes is the staging-stripe count.
	Stripes int `json:"stripes"`
	// Append is the AppendTo latency distribution (including the
	// group-commit ticket wait under SyncAlways); Fsync is the
	// flush+fsync pass distribution.
	Append obs.Summary `json:"append"`
	Fsync  obs.Summary `json:"fsync"`
	// DegradedFsyncMillis is the injected per-fsync stall of the
	// degraded-disk fault mode (0 = healthy).
	DegradedFsyncMillis float64 `json:"degraded_fsync_millis,omitempty"`
}

// stagedRec is one encoded record parked in a stripe's staging buffer,
// awaiting the background writer.
type stagedRec struct {
	seq    uint64
	ticket uint64
	data   []byte // pooled framed bytes, owned by the writer after drain
}

// walStripe is one staging stripe. Producers append encoded records
// under the stripe mutex only — never under the segment writer's lock —
// so concurrent appends for different stripes share no mutable state.
// The struct is padded to a cache line so stripe mutexes never false-
// share.
type walStripe struct {
	mu     sync.Mutex
	recs   []stagedRec
	ticket uint64 // tickets handed out, one per staged record (FIFO)
	closed bool
	// durableTicket is the highest ticket known fsynced; SyncAlways
	// waiters park until it covers their record.
	durableTicket atomic.Uint64
	// Pad to a full cache line: mu(8) + recs header(24) + ticket(8) +
	// closed(1+7) + durableTicket(8) = 56, +8 = 64.
	_ [8]byte
}

// WAL is the append-only, segment-rotated, multi-producer write-ahead
// log. Producers encode records outside any lock, stamp a global atomic
// sequence number, and stage them into per-stripe buffers; one
// background writer drains every stripe, writes the batch in sequence
// order and — under SyncAlways — retires all of it with a single
// group-commit fsync. It is safe for concurrent use.
//
// Ordering contract: the on-disk record order is only approximately the
// sequence order (a producer may be preempted between taking its
// sequence number and staging), so Replay totally orders records by
// sequence number before applying them. Per-key FIFO is the caller's
// half of the contract: callers that require replay order to equal
// apply order for a key (the System's per-user mutations) must
// serialize that key's Append calls, which the System's shard locks do.
type WAL struct {
	dir  string
	opts Options

	seqCtr  atomic.Uint64 // global record sequence, 1-based
	stripes []walStripe
	mask    uint32

	// ioMu is the segment writer's domain: the active file, its bufio
	// writer and the drain machinery. Producers never take it.
	ioMu     sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	seg      atomic.Int64 // active segment (atomic: Stats reads it without ioMu)
	firstSeg atomic.Int64 // oldest retained segment
	size     int64        // bytes in the active segment
	dirty    bool         // bytes written since last fsync
	ioClosed bool
	// pending carries drained-but-unwritten records across cycles: a
	// write error must not drop a record whose Append already returned
	// nil while later records land (that would punch a mid-stream hole
	// in the sequence).
	pending    []stagedRec
	drainHi    []uint64 // per-stripe highest ticket collected, pending fsync
	deferred   error    // sticky async-fsync failure, surfaced by a later Append
	deferredMu sync.Mutex
	// wedged marks a segment-write failure under interval/none: the
	// bufio writer's error is sticky and no later write can land, so
	// appends fail fast with wedgeErr instead of silently staging into
	// an unbounded backlog. (The previous single-mutex WAL had the same
	// terminal state — every Append returned the sticky error — this
	// preserves that contract for the staged path.)
	wedged   atomic.Bool
	wedgeErr error // under deferredMu

	// commitMu/commitCond wake SyncAlways waiters after each group
	// commit. A failed cycle under SyncAlways is terminal: `terminal`
	// flips (with lastErr holding the failure), every parked producer is
	// woken with the error, and no later cycle runs — so a ticket
	// covered by durableTicket always means "written and fsynced", never
	// "dropped by a failure but acked by a later success".
	commitMu     sync.Mutex
	commitCond   *sync.Cond
	terminal     bool // under commitMu
	terminalFlag atomic.Bool
	lastErr      error

	closed   atomic.Bool
	stopOnce sync.Once

	appended      atomic.Int64
	bytes         atomic.Int64
	synced        atomic.Int64
	groupCommits  atomic.Int64
	commitRecords atomic.Int64
	maxBatch      atomic.Int64

	// appendHist is the end-to-end AppendTo latency (under SyncAlways it
	// includes the group-commit ticket wait — the durability price a
	// producer actually pays); fsyncHist times each flush+fsync pass.
	appendHist obs.Histogram
	fsyncHist  obs.Histogram

	// degradedNs, when nonzero, is an injected per-fsync stall — the
	// scenario engine's "sick disk" fault mode. The log stays correct
	// (every durability promise holds, just slower), which is exactly the
	// partial-degradation state /readyz must report without flapping.
	degradedNs atomic.Int64

	scratch sync.Pool // *[]byte record-encoding buffers

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

// OpenWAL opens (or creates) the log in dir, truncating any torn tail
// left in the newest segment by a crash, and continues appending to it
// (the record sequence resumes past the highest on disk). Callers that
// need the torn records replayed must run Replay before OpenWAL
// truncates them away — Open is destructive to the torn tail by design
// (an append after a torn record would otherwise be unreachable to
// every future replay, which stops at the tear).
func OpenWAL(dir string, opts Options) (*WAL, error) {
	opts.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: creating wal dir: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: listing segments: %w", err)
	}
	if err := ensureFormat(dir, len(segs) > 0); err != nil {
		return nil, err
	}
	w := &WAL{
		dir:     dir,
		opts:    opts,
		stripes: make([]walStripe, opts.Stripes),
		mask:    uint32(opts.Stripes - 1),
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	w.seg.Store(1)
	w.firstSeg.Store(1)
	w.commitCond = sync.NewCond(&w.commitMu)
	w.drainHi = make([]uint64, opts.Stripes)
	if len(segs) == 0 {
		if err := w.createSegment(1); err != nil {
			return nil, err
		}
	} else {
		// The record sequence must resume past everything on disk, or
		// replay's total order would sort fresh records before recovered
		// ones. The maximum can live in any retained segment (the last
		// drain before a crash may have landed out of order across a
		// rotation). Callers that just replayed the log pass the maximum
		// they saw via Options.InitialSeq so only the final segment is
		// re-read (for torn-tail truncation); a standalone open scans
		// every segment.
		maxSeq := opts.InitialSeq
		if maxSeq == 0 {
			for _, seg := range segs[:len(segs)-1] {
				_, m, err := validPrefixLen(seg.path)
				if err != nil {
					return nil, fmt.Errorf("durable: scanning %s: %w", seg.path, err)
				}
				if m > maxSeq {
					maxSeq = m
				}
			}
		}
		last := segs[len(segs)-1]
		valid, m, err := validPrefixLen(last.path)
		if err != nil {
			return nil, fmt.Errorf("durable: scanning %s: %w", last.path, err)
		}
		if m > maxSeq {
			maxSeq = m
		}
		f, err := os.OpenFile(last.path, os.O_WRONLY, 0)
		if err != nil {
			return nil, fmt.Errorf("durable: opening segment: %w", err)
		}
		if valid < last.size {
			if err := f.Truncate(valid); err != nil {
				f.Close()
				return nil, fmt.Errorf("durable: truncating torn tail: %w", err)
			}
		}
		if _, err := f.Seek(valid, 0); err != nil {
			f.Close()
			return nil, err
		}
		w.f = f
		w.bw = bufio.NewWriterSize(f, 1<<16)
		w.seg.Store(last.seq)
		w.firstSeg.Store(segs[0].seq)
		w.size = valid
		w.seqCtr.Store(maxSeq)
	}
	var tick *time.Ticker
	if opts.Sync == SyncInterval {
		tick = time.NewTicker(opts.SyncEvery)
	}
	go w.writerLoop(tick)
	return w, nil
}

func (w *WAL) createSegment(seq int64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(seq)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("durable: creating segment: %w", err)
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.seg.Store(seq)
	w.size = 0
	return nil
}

// writerLoop is the single consumer of every staging stripe: it drains
// on producer wakeups (and, under SyncInterval, flushes on the tick).
// Under SyncAlways each pass ends in one fsync that retires every
// record staged since the previous pass — producers that stacked up
// while the disk was busy are all released by the same write barrier,
// which is what makes the log multi-producer without making it
// multi-fsync.
func (w *WAL) writerLoop(tick *time.Ticker) {
	defer close(w.done)
	var tickC <-chan time.Time
	if tick != nil {
		tickC = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case <-w.stop:
			return
		case <-w.wake:
			w.commitCycle()
		case <-tickC:
			w.Sync()
		}
	}
}

// wakeWriter nudges the writer goroutine; the buffered channel
// coalesces bursts into one drain.
func (w *WAL) wakeWriter() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// Append writes one record through staging stripe 0. Single-producer
// callers and tests use it; the System's hook uses AppendTo with the
// user-shard index.
func (w *WAL) Append(e Event) error { return w.AppendTo(0, e) }

// AppendTo stages one record on the given stripe. Under SyncAlways it
// is durable on return (the caller parked on the group-commit notify);
// under SyncInterval/SyncNone it is staged for the background writer
// and a crash may lose it. The record is encoded into a pooled scratch
// buffer entirely outside the stripe lock; the critical section is one
// slice append.
func (w *WAL) AppendTo(stripe uint32, e Event) error {
	if w.closed.Load() {
		return ErrClosed
	}
	if w.wedged.Load() && w.opts.Sync != SyncAlways {
		// A segment-write failure is terminal for the staged path (the
		// bufio writer's error is sticky): fail fast instead of staging
		// into a backlog that can never drain.
		w.deferredMu.Lock()
		err := w.wedgeErr
		w.deferredMu.Unlock()
		return fmt.Errorf("durable: wal write failed, log wedged: %w", err)
	}
	if w.terminalFlag.Load() && w.opts.Sync == SyncAlways {
		// A failed commit cycle killed the log; nothing appended after
		// it can ever become durable, so fail before staging.
		w.commitMu.Lock()
		err := w.lastErr
		w.commitMu.Unlock()
		return fmt.Errorf("durable: wal commit failed, log terminal: %w", err)
	}
	start := time.Now()
	// Sequence first, then encode: the CRC covers the stamped sequence
	// number, and a gap left by a crash between here and staging is a
	// tail gap replay already tolerates (the record's mutation never
	// reported success to anyone).
	e.Seq = w.seqCtr.Add(1)
	bp, _ := w.scratch.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	buf := appendRecord((*bp)[:0], e)
	*bp = buf

	st := &w.stripes[stripe&w.mask]
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		w.scratch.Put(bp)
		return ErrClosed
	}
	if w.opts.Sync != SyncAlways && w.wedged.Load() {
		// Re-check under the stripe lock: a drain failure between the
		// fast-path check and here must not let this record stage with a
		// nil return — it could never be written.
		st.mu.Unlock()
		w.scratch.Put(bp)
		w.deferredMu.Lock()
		err := w.wedgeErr
		w.deferredMu.Unlock()
		return fmt.Errorf("durable: wal write failed, log wedged: %w", err)
	}
	st.ticket++
	ticket := st.ticket
	st.recs = append(st.recs, stagedRec{seq: e.Seq, ticket: ticket, data: buf})
	st.mu.Unlock()

	w.appended.Add(1)
	w.bytes.Add(int64(len(buf)))
	w.wakeWriter()

	if w.opts.Sync != SyncAlways {
		w.appendHist.Observe(time.Since(start))
		// Surface a sticky background-fsync failure on this (unrelated)
		// append — the record itself is staged and will be retried.
		w.deferredMu.Lock()
		sticky := w.deferred
		w.deferred = nil
		w.deferredMu.Unlock()
		if sticky != nil {
			return fmt.Errorf("%w: %v", ErrDeferredSync, sticky)
		}
		return nil
	}

	// Group commit: park until the writer's fsync watermark covers this
	// stripe ticket, or the log goes terminal. Tickets are issued under
	// the stripe lock at staging, and drains swap every stripe's buffer
	// inside one locked pass, so durableTicket covering the ticket means
	// this record was collected, written and fsynced — a failure can
	// never be followed by a successful cycle that would falsely ack a
	// dropped record (failure is terminal).
	w.commitMu.Lock()
	for st.durableTicket.Load() < ticket && !w.terminal {
		w.commitCond.Wait()
	}
	var err error
	if st.durableTicket.Load() < ticket {
		err = w.lastErr
		if err == nil {
			err = fmt.Errorf("durable: commit aborted")
		}
	}
	w.commitMu.Unlock()
	w.appendHist.Observe(time.Since(start))
	return err
}

// commitCycle is one pass of the background writer: drain every stripe,
// write the batch in sequence order, and (under SyncAlways) fsync and
// release the parked producers.
func (w *WAL) commitCycle() {
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	if w.ioClosed || w.terminalFlag.Load() {
		return
	}
	if _, err := w.drainLocked(); err != nil {
		w.publishErrorLocked(err)
		return
	}
	if w.opts.Sync == SyncAlways && w.dirty {
		if err := w.syncLocked(); err != nil {
			w.publishErrorLocked(err)
			return
		}
		w.publishDurableLocked()
	}
}

// drainLocked swaps out every stripe's staging buffer, writes the
// collected records to the active segment in sequence order, and
// returns the scratch buffers to the pool. Writing sorted by sequence
// inside one drain matters for crash safety: a lost write suffix then
// can never keep a record while losing one it causally depends on
// (dependencies always carry a smaller sequence number and land in the
// same or an earlier drain). Callers hold ioMu.
func (w *WAL) drainLocked() (int, error) {
	// The swap holds every stripe lock at once so it is one atomic cut
	// across the whole staging set. A stripe-at-a-time sweep would
	// break causal ordering: a dependency could stage on an
	// already-visited stripe while its dependent stages on a
	// not-yet-visited one, putting the dependent's bytes a full drain
	// ahead of the dependency's — and a crash between flushes would
	// persist the inject without its ingest. With one cut, a record
	// staged before the cut is collected now and anything staged after
	// it (including everything causally downstream) waits for the next
	// cut. The held window is just len(stripes) slice swaps.
	batch := w.pending
	for i := range w.stripes {
		w.stripes[i].mu.Lock()
	}
	for i := range w.stripes {
		st := &w.stripes[i]
		if len(st.recs) > 0 {
			batch = append(batch, st.recs...)
			st.recs = st.recs[:0]
		}
		w.drainHi[i] = st.ticket
	}
	for i := len(w.stripes) - 1; i >= 0; i-- {
		w.stripes[i].mu.Unlock()
	}
	if len(batch) == 0 {
		w.pending = batch
		return 0, nil
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].seq < batch[j].seq })
	for i := range batch {
		if w.size >= w.opts.SegmentBytes {
			// Rotate mid-batch so one large drain cannot blow past the
			// segment bound. The old segment's retirement fsync does NOT
			// publish durable tickets — drainHi covers records later in
			// this batch that are not written yet; publication waits for
			// the cycle's final fsync.
			if _, err := w.rotateLocked(w.opts.Sync == SyncAlways); err != nil {
				return i, w.dropOrCarryLocked(batch, i, err)
			}
		}
		if _, err := w.bw.Write(batch[i].data); err != nil {
			return i, w.dropOrCarryLocked(batch, i, fmt.Errorf("durable: appending record: %w", err))
		}
		w.size += int64(len(batch[i].data))
		d := batch[i].data
		batch[i].data = nil
		w.scratch.Put(&d)
	}
	w.pending = batch[:0]
	w.dirty = true
	n := len(batch)
	w.groupCommits.Add(1)
	w.commitRecords.Add(int64(n))
	for {
		cur := w.maxBatch.Load()
		if int64(n) <= cur || w.maxBatch.CompareAndSwap(cur, int64(n)) {
			break
		}
	}
	return n, nil
}

// dropOrCarryLocked resolves a drain failure at batch index i according
// to the policy's promise. Under SyncAlways every record in the batch
// has a parked producer about to receive this error; retrying the
// unwritten suffix later would durably commit records whose Append
// reported failure — the emit-then-apply ingest path would then replay
// an item the live system never served — so the suffix is dropped and
// "error ⇒ not in the log" holds for everything not yet handed to the
// writer (the already-written prefix is the unavoidable commit-unknown
// window every WAL has). Under interval/none the producers were already
// told "staged" (nil), so their records must eventually land: the
// unwritten suffix is carried to the next cycle. Callers hold ioMu.
func (w *WAL) dropOrCarryLocked(batch []stagedRec, i int, err error) error {
	if w.opts.Sync == SyncAlways {
		for j := i; j < len(batch); j++ {
			d := batch[j].data
			batch[j].data = nil
			w.scratch.Put(&d)
		}
		w.pending = batch[:0]
		return err
	}
	w.pending = batch[i:]
	// The bufio writer's error is sticky, so no later drain can land
	// either: wedge the log so interval/none appends fail fast instead
	// of growing the carried backlog without bound. The flag is set
	// while holding every stripe lock, so any producer whose staging
	// section starts after this point observes it (appends that staged
	// before the wedge are the in-flight window the interval contract
	// already bounds).
	w.deferredMu.Lock()
	if w.wedgeErr == nil {
		w.wedgeErr = err
	}
	w.deferredMu.Unlock()
	for i := range w.stripes {
		w.stripes[i].mu.Lock()
	}
	w.wedged.Store(true)
	for i := len(w.stripes) - 1; i >= 0; i-- {
		w.stripes[i].mu.Unlock()
	}
	return err
}

// publishDurableLocked advances every stripe's durable-ticket watermark
// to the last drain and wakes parked producers. Callers hold ioMu and
// have fsynced everything drained so far.
func (w *WAL) publishDurableLocked() {
	w.commitMu.Lock()
	for i := range w.stripes {
		w.stripes[i].durableTicket.Store(w.drainHi[i])
	}
	w.commitCond.Broadcast()
	w.commitMu.Unlock()
}

// publishErrorLocked records a commit failure. Under SyncAlways the
// failure is terminal: every parked waiter is woken with the error,
// later appends fail fast, and no further cycle runs — the price of
// keeping "durableTicket covers it ⇒ it is durable" exact (a retry
// that succeeded would otherwise falsely ack records the failing cycle
// dropped). The other policies surface it as a sticky ErrDeferredSync
// on a later append. Callers hold ioMu.
func (w *WAL) publishErrorLocked(err error) {
	if w.opts.Sync == SyncAlways {
		w.commitMu.Lock()
		if w.lastErr == nil {
			w.lastErr = err
		}
		w.terminal = true
		w.terminalFlag.Store(true)
		w.commitCond.Broadcast()
		w.commitMu.Unlock()
		return
	}
	w.deferredMu.Lock()
	if w.deferred == nil {
		w.deferred = err
	}
	w.deferredMu.Unlock()
}

// SetFsyncDegraded injects (or, with 0, clears) a per-fsync stall of d —
// the degraded-disk fault mode scenario runs use to model a device whose
// writeback latency collapsed. Durability semantics are untouched: every
// fsync still completes, acked records are still on stable storage; only
// the latency distribution (and everything parked behind a group commit)
// degrades. Safe to flip while the log is live.
func (w *WAL) SetFsyncDegraded(d time.Duration) {
	if d < 0 {
		d = 0
	}
	w.degradedNs.Store(d.Nanoseconds())
}

// FsyncDegraded reports the injected per-fsync stall (0 = healthy).
func (w *WAL) FsyncDegraded() time.Duration {
	return time.Duration(w.degradedNs.Load())
}

// syncLocked flushes and fsyncs the active segment. Callers hold ioMu.
func (w *WAL) syncLocked() error {
	start := time.Now()
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("durable: flushing: %w", err)
	}
	if d := w.degradedNs.Load(); d > 0 {
		// The stall sits where a real device's latency would: between the
		// write handoff and the durability barrier, while ioMu is held —
		// so group commits batch up behind it exactly as they would
		// behind a slow disk.
		time.Sleep(time.Duration(d))
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: fsync: %w", err)
	}
	w.fsyncHist.Observe(time.Since(start))
	w.dirty = false
	w.synced.Add(1)
	return nil
}

// Sync drains the staging stripes, flushes buffered records and fsyncs
// the active segment — the background tick under SyncInterval, and the
// explicit barrier tests and tools use to observe a settled log.
func (w *WAL) Sync() error {
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	if w.ioClosed {
		return nil
	}
	if w.terminalFlag.Load() {
		// Draining a terminal log would write records whose producers
		// were already told their commit failed.
		w.commitMu.Lock()
		defer w.commitMu.Unlock()
		return w.lastErr
	}
	if _, err := w.drainLocked(); err != nil {
		w.publishErrorLocked(err)
		return err
	}
	if !w.dirty {
		return nil
	}
	if err := w.syncLocked(); err != nil {
		w.publishErrorLocked(err)
		return err
	}
	w.publishDurableLocked()
	return nil
}

// Rotate drains the staging stripes, closes the active segment (flushed
// and fsynced) and starts a new one, returning the new segment's
// sequence number. The checkpointer calls it inside the mutation
// barrier — every producer quiesced — so the new segment is the exact
// WAL position its snapshot covers up to.
func (w *WAL) Rotate() (int64, error) {
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	if w.ioClosed {
		return 0, fmt.Errorf("durable: rotate on closed WAL")
	}
	if w.terminalFlag.Load() {
		w.commitMu.Lock()
		err := w.lastErr
		w.commitMu.Unlock()
		return 0, fmt.Errorf("durable: rotate on terminal WAL: %w", err)
	}
	if _, err := w.drainLocked(); err != nil {
		w.publishErrorLocked(err)
		return 0, err
	}
	seq, err := w.rotateLocked(true)
	if err != nil {
		w.publishErrorLocked(err)
		return 0, err
	}
	// Everything drained was fsynced before the old segment closed.
	w.publishDurableLocked()
	return seq, nil
}

func (w *WAL) rotateLocked(syncOld bool) (int64, error) {
	if syncOld {
		if err := w.syncLocked(); err != nil {
			return 0, err
		}
		if err := w.f.Close(); err != nil {
			return 0, err
		}
	} else {
		// Size-triggered rotation retires the old segment with an
		// asynchronous fsync under the interval/none policies: their
		// durability promise is already tick-bounded, so the writer pass
		// must not stall for a multi-megabyte writeback.
		if err := w.bw.Flush(); err != nil {
			return 0, fmt.Errorf("durable: flushing: %w", err)
		}
		w.dirty = false
		go func(f *os.File) {
			err := f.Sync()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				w.deferredMu.Lock()
				if w.deferred == nil {
					w.deferred = fmt.Errorf("durable: retiring segment: %w", err)
				}
				w.deferredMu.Unlock()
				return
			}
			w.synced.Add(1)
		}(w.f)
	}
	if err := w.createSegment(w.seg.Load() + 1); err != nil {
		return 0, err
	}
	return w.seg.Load(), nil
}

// RemoveSegmentsBelow deletes segments with sequence < seq (never the
// active one). The checkpointer calls it after its snapshot is durable.
func (w *WAL) RemoveSegmentsBelow(seq int64) error {
	if cur := w.seg.Load(); seq > cur {
		seq = cur
	}
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s.seq >= seq {
			continue
		}
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("durable: removing segment %d: %w", s.seq, err)
		}
	}
	for {
		cur := w.firstSeg.Load()
		if seq <= cur || w.firstSeg.CompareAndSwap(cur, seq) {
			break
		}
	}
	return nil
}

// Stats snapshots the counters. It never takes ioMu — the writer holds
// that across fsync, and a /stats read must not stall behind disk
// writeback.
func (w *WAL) Stats() WALStats {
	staged := int64(0)
	for i := range w.stripes {
		st := &w.stripes[i]
		st.mu.Lock()
		staged += int64(len(st.recs))
		st.mu.Unlock()
	}
	seg, first := w.seg.Load(), w.firstSeg.Load()
	s := WALStats{
		Appended:           w.appended.Load(),
		Synced:             w.synced.Load(),
		Bytes:              w.bytes.Load(),
		Segments:           seg - first + 1,
		SegmentSeq:         seg,
		Policy:             w.opts.Sync.String(),
		GroupCommits:       w.groupCommits.Load(),
		GroupCommitRecords: w.commitRecords.Load(),
		MaxCommitBatch:     w.maxBatch.Load(),
		Staged:             staged,
		Stripes:            len(w.stripes),
	}
	if s.GroupCommits > 0 {
		s.MeanCommitBatch = float64(s.GroupCommitRecords) / float64(s.GroupCommits)
	}
	s.Append = w.appendHist.Summary()
	s.Fsync = w.fsyncHist.Summary()
	s.DegradedFsyncMillis = float64(w.degradedNs.Load()) / 1e6
	return s
}

// AppendHistogram is the AppendTo latency distribution, for
// metrics-endpoint registration.
func (w *WAL) AppendHistogram() *obs.Histogram { return &w.appendHist }

// FsyncHistogram is the flush+fsync latency distribution, for
// metrics-endpoint registration.
func (w *WAL) FsyncHistogram() *obs.Histogram { return &w.fsyncHist }

// Err reports the log's sticky failure state: the wedge error after a
// segment-write failure under interval/none, or the terminal error
// after a failed commit cycle under SyncAlways. A readiness probe uses
// it to eject a node whose log can no longer accept writes. Returns nil
// while the log is healthy (or merely closed).
func (w *WAL) Err() error {
	if w.terminalFlag.Load() {
		w.commitMu.Lock()
		err := w.lastErr
		w.commitMu.Unlock()
		if err == nil {
			err = fmt.Errorf("durable: wal terminal")
		}
		return err
	}
	if w.wedged.Load() {
		w.deferredMu.Lock()
		err := w.wedgeErr
		w.deferredMu.Unlock()
		if err == nil {
			err = fmt.Errorf("durable: wal wedged")
		}
		return err
	}
	return nil
}

// closeStripes marks every stripe closed (failing subsequent appends)
// and must run before the final drain so nothing stages after it.
func (w *WAL) closeStripes() {
	w.closed.Store(true)
	for i := range w.stripes {
		st := &w.stripes[i]
		st.mu.Lock()
		st.closed = true
		st.mu.Unlock()
	}
}

// stopWriter halts the background writer goroutine.
func (w *WAL) stopWriter() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

// Close drains, flushes, fsyncs and closes the log. On failure any
// parked SyncAlways producer is woken with the error — a shutdown I/O
// error must not strand a request handler on the commit notify.
func (w *WAL) Close() error {
	w.closeStripes()
	w.stopWriter()
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	if w.ioClosed {
		return nil
	}
	w.ioClosed = true
	if w.terminalFlag.Load() {
		// A terminal log must not drain: still-staged records belong to
		// producers that were already told their commit failed, and
		// writing them now would put "failed" mutations in the log.
		w.f.Close()
		w.commitMu.Lock()
		err := w.lastErr
		w.commitMu.Unlock()
		return err
	}
	if _, err := w.drainLocked(); err != nil {
		w.publishErrorLocked(err)
		return err
	}
	if err := w.syncLocked(); err != nil {
		w.publishErrorLocked(err)
		return err
	}
	w.publishDurableLocked()
	return w.f.Close()
}

// Abandon drops the log without draining or flushing — the
// crash-simulation path used by tests and the load generator's -restart
// workload: whatever the writer has not handed to the OS is lost,
// exactly as in a process kill. Parked SyncAlways producers are woken
// with an error.
func (w *WAL) Abandon() {
	w.closeStripes()
	w.stopWriter()
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	if w.ioClosed {
		return
	}
	w.ioClosed = true
	w.f.Close()
	w.commitMu.Lock()
	if w.lastErr == nil {
		w.lastErr = fmt.Errorf("durable: wal abandoned")
	}
	w.terminal = true
	w.terminalFlag.Store(true)
	w.commitCond.Broadcast()
	w.commitMu.Unlock()
}
