package durable

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// This file is the shipping surface of the WAL: the exported listing,
// naming and incremental-scan primitives a replication follower needs to
// mirror a leader's data directory byte-for-byte and apply the records
// as they arrive. The framing and torn-tail semantics are exactly those
// of Replay; shipping adds nothing to the format — a follower's
// directory is a valid recovery directory at every instant, which is
// what makes promotion "just recover from local disk".

// ShipFile is one shippable file (WAL segment or checkpoint) on disk.
type ShipFile struct {
	// Seq is the file's sequence number (segment number, or the WAL
	// segment a checkpoint covers up to).
	Seq int64 `json:"seq"`
	// Size is the current byte size. For the active segment it grows
	// between polls; bytes past a follower's cursor are the ship window.
	Size int64 `json:"size"`
	// Path is the local path (leader side only; never serialized).
	Path string `json:"-"`
}

// ListSegmentFiles returns the WAL segments in dir ascending by
// sequence, with their current sizes. A missing directory is an empty
// log, not an error.
func ListSegmentFiles(dir string) ([]ShipFile, error) {
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	out := make([]ShipFile, len(segs))
	for i, s := range segs {
		out[i] = ShipFile{Seq: s.seq, Size: s.size, Path: s.path}
	}
	return out, nil
}

// ListCheckpointFiles returns the checkpoints in dir ascending by
// sequence, with sizes.
func ListCheckpointFiles(dir string) ([]ShipFile, error) {
	files, err := listNumbered(dir, checkpointPrefix, checkpointSuffix)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	out := make([]ShipFile, len(files))
	for i, f := range files {
		out[i] = ShipFile{Seq: f.seq, Size: f.size, Path: f.path}
	}
	return out, nil
}

// SegmentFileName renders the file name of WAL segment seq, so a
// follower writes shipped bytes under the exact name recovery expects.
func SegmentFileName(seq int64) string { return segmentName(seq) }

// CheckpointFileName renders the file name of the checkpoint covering
// WAL segments below seq.
func CheckpointFileName(seq int64) string { return checkpointName(seq) }

// InitShipDir prepares a follower data directory: creates it and writes
// the WAL format marker, so the shipped segments parse under the same
// format guard as locally written ones. Safe to call repeatedly; fails
// if the directory already holds a different format.
func InitShipDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("durable: creating ship dir: %w", err)
	}
	return ensureFormat(dir, false)
}

// FormatVersion is the WAL record-framing version this release writes
// and reads. A shipping source advertises it so a follower refuses to
// mirror a log it cannot parse.
const FormatVersion = formatVersion

// ScanSegment reads the valid records of one segment starting at byte
// offset off, applying each through fn, and returns the new valid-prefix
// offset. A torn record at the scan end sets torn — for the active
// segment that is the normal "rest of the record has not shipped yet"
// state, and the caller resumes from newOff once more bytes arrive; a
// sealed segment ending torn is corruption the caller must surface. An
// error from fn aborts the scan with newOff pointing at the failed
// record, so a retry re-applies it.
func ScanSegment(path string, off int64, fn func(Event) error) (newOff int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return off, false, err
	}
	defer f.Close()
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return off, false, err
	}
	r := bufio.NewReaderSize(f, 1<<16)
	newOff = off
	for {
		e, err := readRecord(r)
		if err == io.EOF {
			return newOff, false, nil
		}
		if err == ErrTorn {
			return newOff, true, nil
		}
		if err != nil {
			return newOff, false, err
		}
		if err := fn(e); err != nil {
			return newOff, false, err
		}
		newOff += recordSize(e)
	}
}

// SeqCeiling is the highest record sequence number the log has handed
// out. Every record whose Append returned is stamped with a sequence at
// or below it, so "a follower has applied everything up to SeqCeiling
// taken after a write" implies the follower has that write — the
// replication acknowledgment bound the router waits on.
func (w *WAL) SeqCeiling() uint64 { return w.seqCtr.Load() }
