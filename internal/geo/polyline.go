package geo

import "math"

// Polyline is an ordered sequence of points, e.g. a route or a simplified
// trajectory.
type Polyline []Point

// Length returns the total great-circle length of the polyline in meters.
func (pl Polyline) Length() float64 {
	var total float64
	for i := 1; i < len(pl); i++ {
		total += Distance(pl[i-1], pl[i])
	}
	return total
}

// Bounds returns the bounding box of the polyline. It returns the zero
// Rect for an empty polyline.
func (pl Polyline) Bounds() Rect {
	if len(pl) == 0 {
		return Rect{}
	}
	r := PointRect(pl[0])
	for _, p := range pl[1:] {
		r = r.Extend(p)
	}
	return r
}

// At returns the point a fraction f ∈ [0,1] along the polyline by arc
// length. f is clamped to [0,1]. An empty polyline yields the zero Point;
// a single-point polyline yields that point.
func (pl Polyline) At(f float64) Point {
	switch len(pl) {
	case 0:
		return Point{}
	case 1:
		return pl[0]
	}
	if f <= 0 {
		return pl[0]
	}
	if f >= 1 {
		return pl[len(pl)-1]
	}
	target := pl.Length() * f
	var walked float64
	for i := 1; i < len(pl); i++ {
		seg := Distance(pl[i-1], pl[i])
		if walked+seg >= target {
			if seg == 0 {
				return pl[i]
			}
			return Interpolate(pl[i-1], pl[i], (target-walked)/seg)
		}
		walked += seg
	}
	return pl[len(pl)-1]
}

// DistanceToSegment returns the minimum distance in meters from p to the
// segment ab, using a local equirectangular projection around a, which is
// accurate for the sub-kilometer segments that GPS traces produce.
func DistanceToSegment(p, a, b Point) float64 {
	// Project into a local tangent plane (meters) centered at a.
	cosLat := math.Cos(radians(a.Lat))
	ax, ay := 0.0, 0.0
	bx := radians(b.Lon-a.Lon) * cosLat * EarthRadiusMeters
	by := radians(b.Lat-a.Lat) * EarthRadiusMeters
	px := radians(p.Lon-a.Lon) * cosLat * EarthRadiusMeters
	py := radians(p.Lat-a.Lat) * EarthRadiusMeters

	dx, dy := bx-ax, by-ay
	segLen2 := dx*dx + dy*dy
	if segLen2 == 0 {
		return math.Hypot(px-ax, py-ay)
	}
	t := ((px-ax)*dx + (py-ay)*dy) / segLen2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	cx, cy := ax+t*dx, ay+t*dy
	return math.Hypot(px-cx, py-cy)
}

// DistanceToPolyline returns the minimum distance in meters from p to any
// segment of pl. It returns +Inf for an empty polyline and the point
// distance for a single-point polyline.
func DistanceToPolyline(p Point, pl Polyline) float64 {
	switch len(pl) {
	case 0:
		return math.Inf(1)
	case 1:
		return Distance(p, pl[0])
	}
	best := math.Inf(1)
	for i := 1; i < len(pl); i++ {
		if d := DistanceToSegment(p, pl[i-1], pl[i]); d < best {
			best = d
		}
	}
	return best
}

// Centroid returns the arithmetic mean of the points (adequate at city
// scale; the tracking compactor uses it for stay-point centers). The zero
// Point is returned for an empty input.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var lat, lon float64
	for _, p := range pts {
		lat += p.Lat
		lon += p.Lon
	}
	n := float64(len(pts))
	return Point{Lat: lat / n, Lon: lon / n}
}
