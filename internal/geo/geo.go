// Package geo provides the geodesy primitives used throughout PPHCR:
// WGS84 latitude/longitude points, great-circle (haversine) distances,
// bearings, destination points, polylines and bounding boxes.
//
// All distances are in meters, all angles in degrees unless a name says
// otherwise. The accuracy of the spherical model (≪0.5% error) is far
// beyond what GPS-noise-driven mobility modeling needs.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by the spherical model.
const EarthRadiusMeters = 6371008.8

// Point is a WGS84 coordinate in decimal degrees.
type Point struct {
	Lat float64 // latitude, degrees, positive north
	Lon float64 // longitude, degrees, positive east
}

// String renders the point as "lat,lon" with 6 decimal places (~0.1 m).
func (p Point) String() string {
	return fmt.Sprintf("%.6f,%.6f", p.Lat, p.Lon)
}

// Valid reports whether the point lies in the legal lat/lon ranges.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

func radians(deg float64) float64 { return deg * math.Pi / 180 }
func degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Distance returns the great-circle distance between a and b in meters,
// computed with the haversine formula (numerically stable for small
// separations, which dominate GPS traces).
func Distance(a, b Point) float64 {
	la1, lo1 := radians(a.Lat), radians(a.Lon)
	la2, lo2 := radians(b.Lat), radians(b.Lon)
	sinLat := math.Sin((la2 - la1) / 2)
	sinLon := math.Sin((lo2 - lo1) / 2)
	h := sinLat*sinLat + math.Cos(la1)*math.Cos(la2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(h))
}

// Bearing returns the initial great-circle bearing from a to b in degrees
// in [0, 360), measured clockwise from true north.
func Bearing(a, b Point) float64 {
	la1, lo1 := radians(a.Lat), radians(a.Lon)
	la2, lo2 := radians(b.Lat), radians(b.Lon)
	dLon := lo2 - lo1
	y := math.Sin(dLon) * math.Cos(la2)
	x := math.Cos(la1)*math.Sin(la2) - math.Sin(la1)*math.Cos(la2)*math.Cos(dLon)
	brg := degrees(math.Atan2(y, x))
	return math.Mod(brg+360, 360)
}

// Destination returns the point reached by traveling dist meters from p
// along the given initial bearing (degrees clockwise from north).
func Destination(p Point, bearingDeg, dist float64) Point {
	la1, lo1 := radians(p.Lat), radians(p.Lon)
	brg := radians(bearingDeg)
	ad := dist / EarthRadiusMeters
	la2 := math.Asin(math.Sin(la1)*math.Cos(ad) + math.Cos(la1)*math.Sin(ad)*math.Cos(brg))
	lo2 := lo1 + math.Atan2(
		math.Sin(brg)*math.Sin(ad)*math.Cos(la1),
		math.Cos(ad)-math.Sin(la1)*math.Sin(la2),
	)
	// Normalize longitude to [-180, 180).
	lon := math.Mod(degrees(lo2)+540, 360) - 180
	return Point{Lat: degrees(la2), Lon: lon}
}

// Midpoint returns the great-circle midpoint of a and b.
func Midpoint(a, b Point) Point {
	la1, lo1 := radians(a.Lat), radians(a.Lon)
	la2, lo2 := radians(b.Lat), radians(b.Lon)
	dLon := lo2 - lo1
	bx := math.Cos(la2) * math.Cos(dLon)
	by := math.Cos(la2) * math.Sin(dLon)
	la3 := math.Atan2(math.Sin(la1)+math.Sin(la2),
		math.Sqrt((math.Cos(la1)+bx)*(math.Cos(la1)+bx)+by*by))
	lo3 := lo1 + math.Atan2(by, math.Cos(la1)+bx)
	lon := math.Mod(degrees(lo3)+540, 360) - 180
	return Point{Lat: degrees(la3), Lon: lon}
}

// Interpolate returns the point a fraction f of the way from a to b along
// the straight (equirectangular) segment. f outside [0,1] extrapolates.
// For the sub-kilometer segments of GPS traces this is indistinguishable
// from great-circle interpolation.
func Interpolate(a, b Point, f float64) Point {
	return Point{
		Lat: a.Lat + (b.Lat-a.Lat)*f,
		Lon: a.Lon + (b.Lon-a.Lon)*f,
	}
}

// Rect is an axis-aligned bounding box in lat/lon space.
// Boxes never wrap the antimeridian; the synthetic city does not either.
type Rect struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// NewRect returns the smallest Rect containing both corner points.
func NewRect(a, b Point) Rect {
	return Rect{
		MinLat: math.Min(a.Lat, b.Lat),
		MinLon: math.Min(a.Lon, b.Lon),
		MaxLat: math.Max(a.Lat, b.Lat),
		MaxLon: math.Max(a.Lon, b.Lon),
	}
}

// RectAround returns a Rect that conservatively contains the disc of
// radius r meters around center. Near the poles the longitude span is
// clamped to the full range.
func RectAround(center Point, r float64) Rect {
	dLat := degrees(r / EarthRadiusMeters)
	cosLat := math.Cos(radians(center.Lat))
	var dLon float64
	if cosLat < 1e-9 {
		dLon = 180
	} else {
		dLon = degrees(r / (EarthRadiusMeters * cosLat))
	}
	return Rect{
		MinLat: math.Max(center.Lat-dLat, -90),
		MinLon: math.Max(center.Lon-dLon, -180),
		MaxLat: math.Min(center.Lat+dLat, 90),
		MaxLon: math.Min(center.Lon+dLon, 180),
	}
}

// Contains reports whether p lies inside r (inclusive bounds).
func (r Rect) Contains(p Point) bool {
	return p.Lat >= r.MinLat && p.Lat <= r.MaxLat &&
		p.Lon >= r.MinLon && p.Lon <= r.MaxLon
}

// Intersects reports whether r and o overlap (inclusive bounds).
func (r Rect) Intersects(o Rect) bool {
	return r.MinLat <= o.MaxLat && r.MaxLat >= o.MinLat &&
		r.MinLon <= o.MaxLon && r.MaxLon >= o.MinLon
}

// Union returns the smallest Rect containing both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		MinLat: math.Min(r.MinLat, o.MinLat),
		MinLon: math.Min(r.MinLon, o.MinLon),
		MaxLat: math.Max(r.MaxLat, o.MaxLat),
		MaxLon: math.Max(r.MaxLon, o.MaxLon),
	}
}

// Extend returns the smallest Rect containing r and p.
func (r Rect) Extend(p Point) Rect {
	return r.Union(Rect{MinLat: p.Lat, MinLon: p.Lon, MaxLat: p.Lat, MaxLon: p.Lon})
}

// Area returns the rectangle's area in squared degrees. It is used only
// to compare candidate R-tree splits, so the unit does not matter.
func (r Rect) Area() float64 {
	return (r.MaxLat - r.MinLat) * (r.MaxLon - r.MinLon)
}

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{Lat: (r.MinLat + r.MaxLat) / 2, Lon: (r.MinLon + r.MaxLon) / 2}
}

// PointRect returns the degenerate Rect covering exactly p.
func PointRect(p Point) Rect {
	return Rect{MinLat: p.Lat, MinLon: p.Lon, MaxLat: p.Lat, MaxLon: p.Lon}
}
