package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// torino is the reference city of the paper's deployment (Rai, Torino).
var torino = Point{Lat: 45.0703, Lon: 7.6869}

func TestDistanceZero(t *testing.T) {
	if d := Distance(torino, torino); d != 0 {
		t.Fatalf("Distance(p,p) = %v, want 0", d)
	}
}

func TestDistanceKnown(t *testing.T) {
	// Torino -> Milano is roughly 125 km.
	milano := Point{Lat: 45.4642, Lon: 9.19}
	d := Distance(torino, milano)
	if d < 115e3 || d > 135e3 {
		t.Fatalf("Torino-Milano distance = %v m, want ~125 km", d)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(aLat, aLon, bLat, bLon float64) bool {
		a := Point{Lat: math.Mod(aLat, 89), Lon: math.Mod(aLon, 179)}
		b := Point{Lat: math.Mod(bLat, 89), Lon: math.Mod(bLon, 179)}
		d1, d2 := Distance(a, b), Distance(b, a)
		return math.Abs(d1-d2) < 1e-6*(1+d1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(aLat, aLon, bLat, bLon, cLat, cLon float64) bool {
		a := Point{Lat: math.Mod(aLat, 89), Lon: math.Mod(aLon, 179)}
		b := Point{Lat: math.Mod(bLat, 89), Lon: math.Mod(bLon, 179)}
		c := Point{Lat: math.Mod(cLat, 89), Lon: math.Mod(cLon, 179)}
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	f := func(brgSeed, distSeed float64) bool {
		brg := math.Mod(math.Abs(brgSeed), 360)
		dist := math.Mod(math.Abs(distSeed), 50000) // up to 50 km
		q := Destination(torino, brg, dist)
		got := Distance(torino, q)
		return math.Abs(got-dist) < 1.0 // within 1 m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDestinationBearingConsistency(t *testing.T) {
	q := Destination(torino, 90, 10000)
	brg := Bearing(torino, q)
	if math.Abs(brg-90) > 0.5 {
		t.Fatalf("bearing to eastward destination = %v, want ~90", brg)
	}
	if q.Lon <= torino.Lon {
		t.Fatalf("eastward destination did not move east: %v", q)
	}
}

func TestBearingRange(t *testing.T) {
	f := func(aLat, aLon, bLat, bLon float64) bool {
		a := Point{Lat: math.Mod(aLat, 89), Lon: math.Mod(aLon, 179)}
		b := Point{Lat: math.Mod(bLat, 89), Lon: math.Mod(bLon, 179)}
		brg := Bearing(a, b)
		return brg >= 0 && brg < 360
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMidpointIsEquidistant(t *testing.T) {
	a := torino
	b := Point{Lat: 45.4642, Lon: 9.19}
	m := Midpoint(a, b)
	da, db := Distance(a, m), Distance(b, m)
	if math.Abs(da-db) > 1 {
		t.Fatalf("midpoint distances differ: %v vs %v", da, db)
	}
}

func TestInterpolateEndpoints(t *testing.T) {
	a, b := torino, Point{Lat: 45.1, Lon: 7.7}
	if Interpolate(a, b, 0) != a {
		t.Fatal("Interpolate(...,0) != a")
	}
	if Interpolate(a, b, 1) != b {
		t.Fatal("Interpolate(...,1) != b")
	}
}

func TestValid(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{90, 180}, true},
		{Point{-90, -180}, true},
		{Point{91, 0}, false},
		{Point{0, 181}, false},
		{Point{math.NaN(), 0}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectAroundContainsDisc(t *testing.T) {
	r := RectAround(torino, 5000)
	// Sample points on the 5 km circle; all must be inside the rect.
	for brg := 0.0; brg < 360; brg += 15 {
		p := Destination(torino, brg, 4999)
		if !r.Contains(p) {
			t.Fatalf("RectAround misses point at bearing %v: %v", brg, p)
		}
	}
}

func TestRectOperations(t *testing.T) {
	a := NewRect(Point{45, 7}, Point{46, 8})
	b := NewRect(Point{45.5, 7.5}, Point{46.5, 8.5})
	c := NewRect(Point{50, 10}, Point{51, 11})

	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("overlapping rects should intersect")
	}
	if a.Intersects(c) {
		t.Fatal("disjoint rects should not intersect")
	}
	u := a.Union(b)
	if !u.Contains(Point{45.2, 7.2}) || !u.Contains(Point{46.4, 8.4}) {
		t.Fatal("union must contain both inputs")
	}
	if got := a.Area(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Area = %v, want 1", got)
	}
	ctr := a.Center()
	if math.Abs(ctr.Lat-45.5) > 1e-12 || math.Abs(ctr.Lon-7.5) > 1e-12 {
		t.Fatalf("Center = %v", ctr)
	}
}

func TestRectExtend(t *testing.T) {
	r := PointRect(torino)
	p := Point{Lat: 46, Lon: 8}
	r = r.Extend(p)
	if !r.Contains(torino) || !r.Contains(p) {
		t.Fatal("Extend must contain both points")
	}
}

func TestPolylineLengthAndAt(t *testing.T) {
	pl := Polyline{
		torino,
		Destination(torino, 90, 1000),
		Destination(Destination(torino, 90, 1000), 90, 1000),
	}
	l := pl.Length()
	if math.Abs(l-2000) > 2 {
		t.Fatalf("Length = %v, want ~2000", l)
	}
	mid := pl.At(0.5)
	if d := Distance(pl[0], mid); math.Abs(d-1000) > 5 {
		t.Fatalf("At(0.5) is %v m along, want ~1000", d)
	}
	if pl.At(0) != pl[0] || pl.At(1) != pl[2] {
		t.Fatal("At endpoints mismatch")
	}
	if pl.At(-1) != pl[0] || pl.At(2) != pl[2] {
		t.Fatal("At clamping mismatch")
	}
}

func TestPolylineAtDegenerate(t *testing.T) {
	if (Polyline{}).At(0.5) != (Point{}) {
		t.Fatal("empty polyline At should be zero point")
	}
	one := Polyline{torino}
	if one.At(0.7) != torino {
		t.Fatal("single-point polyline At should return the point")
	}
}

func TestDistanceToSegment(t *testing.T) {
	a := torino
	b := Destination(a, 90, 2000)
	// Point 300 m north of the segment midpoint.
	mid := Interpolate(a, b, 0.5)
	p := Destination(mid, 0, 300)
	d := DistanceToSegment(p, a, b)
	if math.Abs(d-300) > 5 {
		t.Fatalf("DistanceToSegment = %v, want ~300", d)
	}
	// Beyond the segment end, the distance is to the endpoint.
	q := Destination(b, 90, 500)
	d = DistanceToSegment(q, a, b)
	if math.Abs(d-500) > 5 {
		t.Fatalf("DistanceToSegment beyond end = %v, want ~500", d)
	}
}

func TestDistanceToSegmentDegenerate(t *testing.T) {
	p := Destination(torino, 0, 123)
	d := DistanceToSegment(p, torino, torino)
	if math.Abs(d-123) > 1 {
		t.Fatalf("degenerate segment distance = %v, want ~123", d)
	}
}

func TestDistanceToPolyline(t *testing.T) {
	pl := Polyline{
		torino,
		Destination(torino, 90, 1000),
		Destination(Destination(torino, 90, 1000), 0, 1000),
	}
	p := Destination(torino, 90, 500) // on the first segment
	if d := DistanceToPolyline(p, pl); d > 5 {
		t.Fatalf("on-line point distance = %v, want ~0", d)
	}
	if d := DistanceToPolyline(torino, Polyline{}); !math.IsInf(d, 1) {
		t.Fatal("empty polyline should give +Inf")
	}
	if d := DistanceToPolyline(torino, Polyline{torino}); d != 0 {
		t.Fatalf("single-point polyline distance = %v", d)
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{{Lat: 1, Lon: 1}, {Lat: 3, Lon: 3}}
	c := Centroid(pts)
	if c.Lat != 2 || c.Lon != 2 {
		t.Fatalf("Centroid = %v", c)
	}
	if Centroid(nil) != (Point{}) {
		t.Fatal("empty centroid should be zero")
	}
}

func TestPolylineBounds(t *testing.T) {
	pl := Polyline{{Lat: 1, Lon: 2}, {Lat: -1, Lon: 5}, {Lat: 3, Lon: 0}}
	b := pl.Bounds()
	want := Rect{MinLat: -1, MinLon: 0, MaxLat: 3, MaxLon: 5}
	if b != want {
		t.Fatalf("Bounds = %+v, want %+v", b, want)
	}
	if (Polyline{}).Bounds() != (Rect{}) {
		t.Fatal("empty bounds should be zero")
	}
}
