// Package cluster implements the density-based clustering algorithm
// DBSCAN (Ester, Kriegel, Sander, Xu — KDD 1996), which the paper uses to
// extract the "major staying points on the driving paths" from raw GPS
// tracking data (§1.2).
//
// The implementation is generic over the item type; neighborhood queries
// are delegated to a caller-supplied function so that callers with a
// spatial index (package spatial) can answer them in sublinear time.
package cluster

// Label values returned by DBSCAN. Cluster IDs are non-negative; Noise
// marks points that belong to no cluster.
const Noise = -1

// NeighborFunc returns the indices of all items within the scan radius of
// item i, including i itself. DBSCAN calls it at most twice per item.
type NeighborFunc func(i int) []int

// DBSCAN clusters n items using the classic density-reachability
// definition: an item with at least minPts neighbors (itself included) is
// a core point; clusters are maximal sets of density-connected points.
// It returns a label per item: a cluster ID in [0, k) or Noise.
//
// The neighbors function defines the ε-neighborhood; DBSCAN itself is
// metric-agnostic.
func DBSCAN(n int, minPts int, neighbors NeighborFunc) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unvisited
	}
	clusterID := 0
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		nbrs := neighbors(i)
		if len(nbrs) < minPts {
			labels[i] = Noise
			continue
		}
		// i is a core point: start a new cluster and expand it with a
		// breadth-first frontier over density-reachable points.
		labels[i] = clusterID
		frontier := append([]int(nil), nbrs...)
		for len(frontier) > 0 {
			j := frontier[0]
			frontier = frontier[1:]
			if labels[j] == Noise {
				// Border point previously dismissed as noise.
				labels[j] = clusterID
				continue
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = clusterID
			jn := neighbors(j)
			if len(jn) >= minPts {
				frontier = append(frontier, jn...)
			}
		}
		clusterID++
	}
	return labels
}

const unvisited = -2

// Count returns the number of clusters in a label slice produced by
// DBSCAN (the number of distinct non-negative labels).
func Count(labels []int) int {
	max := -1
	for _, l := range labels {
		if l > max {
			max = l
		}
	}
	return max + 1
}

// Groups partitions item indices by cluster label. Noise points are
// returned separately.
func Groups(labels []int) (clusters [][]int, noise []int) {
	k := Count(labels)
	clusters = make([][]int, k)
	for i, l := range labels {
		if l == Noise {
			noise = append(noise, i)
			continue
		}
		clusters[l] = append(clusters[l], i)
	}
	return clusters, noise
}
