package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// planarNeighbors builds a brute-force NeighborFunc over 2D points.
func planarNeighbors(pts [][2]float64, eps float64) NeighborFunc {
	return func(i int) []int {
		var out []int
		for j := range pts {
			dx := pts[i][0] - pts[j][0]
			dy := pts[i][1] - pts[j][1]
			if math.Hypot(dx, dy) <= eps {
				out = append(out, j)
			}
		}
		return out
	}
}

func gaussianBlob(rng *rand.Rand, cx, cy, sigma float64, n int) [][2]float64 {
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{cx + rng.NormFloat64()*sigma, cy + rng.NormFloat64()*sigma}
	}
	return pts
}

func TestDBSCANTwoBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := append(gaussianBlob(rng, 0, 0, 0.1, 50), gaussianBlob(rng, 10, 10, 0.1, 50)...)
	labels := DBSCAN(len(pts), 4, planarNeighbors(pts, 0.5))
	if k := Count(labels); k != 2 {
		t.Fatalf("Count = %d, want 2", k)
	}
	// All points in the first blob must share one label, second blob another.
	first, second := labels[0], labels[50]
	if first == second {
		t.Fatal("blobs merged")
	}
	for i := 0; i < 50; i++ {
		if labels[i] != first {
			t.Fatalf("point %d in blob 1 has label %d, want %d", i, labels[i], first)
		}
	}
	for i := 50; i < 100; i++ {
		if labels[i] != second {
			t.Fatalf("point %d in blob 2 has label %d, want %d", i, labels[i], second)
		}
	}
}

func TestDBSCANNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := gaussianBlob(rng, 0, 0, 0.1, 30)
	pts = append(pts, [2]float64{100, 100}) // isolated outlier
	labels := DBSCAN(len(pts), 4, planarNeighbors(pts, 0.5))
	if labels[30] != Noise {
		t.Fatalf("outlier label = %d, want Noise", labels[30])
	}
	if k := Count(labels); k != 1 {
		t.Fatalf("Count = %d, want 1", k)
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	// Points too sparse for minPts=3 within eps.
	pts := [][2]float64{{0, 0}, {10, 0}, {20, 0}, {30, 0}}
	labels := DBSCAN(len(pts), 3, planarNeighbors(pts, 1))
	for i, l := range labels {
		if l != Noise {
			t.Fatalf("point %d label = %d, want Noise", i, l)
		}
	}
	if Count(labels) != 0 {
		t.Fatal("expected zero clusters")
	}
}

func TestDBSCANEmpty(t *testing.T) {
	labels := DBSCAN(0, 3, func(int) []int { return nil })
	if len(labels) != 0 {
		t.Fatal("expected empty labels")
	}
	if Count(labels) != 0 {
		t.Fatal("expected zero clusters")
	}
}

func TestDBSCANChainConnectivity(t *testing.T) {
	// A chain of points each within eps of the next must form one cluster
	// (density-connectivity is transitive through core points).
	var pts [][2]float64
	for i := 0; i < 20; i++ {
		pts = append(pts, [2]float64{float64(i) * 0.4, 0})
	}
	labels := DBSCAN(len(pts), 3, planarNeighbors(pts, 0.5))
	if k := Count(labels); k != 1 {
		t.Fatalf("chain split into %d clusters", k)
	}
	for i, l := range labels {
		if l != 0 {
			t.Fatalf("chain point %d has label %d", i, l)
		}
	}
}

func TestDBSCANBorderPointAdoption(t *testing.T) {
	// A point within eps of a core point but itself not core must join the
	// cluster (border point), not stay noise.
	pts := [][2]float64{{0, 0}, {0.1, 0}, {0.2, 0}, {0.3, 0}, {0.75, 0}}
	labels := DBSCAN(len(pts), 4, planarNeighbors(pts, 0.5))
	if labels[4] != labels[0] {
		t.Fatalf("border point label = %d, want %d", labels[4], labels[0])
	}
}

func TestDBSCANLabelInvariants(t *testing.T) {
	// Property: every label is Noise or in [0, Count); every cluster is
	// non-empty; labels length matches input.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%60) + 1
		rng := rand.New(rand.NewSource(seed))
		pts := make([][2]float64, n)
		for i := range pts {
			pts[i] = [2]float64{rng.Float64() * 5, rng.Float64() * 5}
		}
		labels := DBSCAN(n, 3, planarNeighbors(pts, 0.7))
		if len(labels) != n {
			return false
		}
		k := Count(labels)
		seen := make([]bool, k)
		for _, l := range labels {
			if l == Noise {
				continue
			}
			if l < 0 || l >= k {
				return false
			}
			seen[l] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDBSCANDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := gaussianBlob(rng, 0, 0, 1.0, 80)
	a := DBSCAN(len(pts), 4, planarNeighbors(pts, 0.6))
	b := DBSCAN(len(pts), 4, planarNeighbors(pts, 0.6))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("DBSCAN not deterministic")
		}
	}
}

func TestGroups(t *testing.T) {
	labels := []int{0, 1, Noise, 0, 1, 1}
	clusters, noise := Groups(labels)
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters", len(clusters))
	}
	if len(clusters[0]) != 2 || len(clusters[1]) != 3 {
		t.Fatalf("cluster sizes %d/%d", len(clusters[0]), len(clusters[1]))
	}
	if len(noise) != 1 || noise[0] != 2 {
		t.Fatalf("noise = %v", noise)
	}
}

func BenchmarkDBSCAN1000(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var pts [][2]float64
	for c := 0; c < 10; c++ {
		pts = append(pts, gaussianBlob(rng, float64(c)*10, 0, 0.3, 100)...)
	}
	nf := planarNeighbors(pts, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DBSCAN(len(pts), 4, nf)
	}
}
