package content

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"pphcr/internal/asr"
	"pphcr/internal/geo"
	"pphcr/internal/textclass"
)

var (
	torino = geo.Point{Lat: 45.0703, Lon: 7.6869}
	t0     = time.Date(2016, 11, 15, 6, 0, 0, 0, time.UTC)
)

func item(id, cat string, dur time.Duration, published time.Time) *Item {
	return &Item{
		ID:         id,
		Title:      "title-" + id,
		Duration:   dur,
		Published:  published,
		Categories: map[string]float64{cat: 1},
	}
}

func TestCategoriesInvariants(t *testing.T) {
	if len(Categories) != 30 {
		t.Fatalf("the paper specifies 30 categories, got %d", len(Categories))
	}
	seen := map[string]bool{}
	for _, c := range Categories {
		if seen[c] {
			t.Fatalf("duplicate category %q", c)
		}
		seen[c] = true
	}
	for _, c := range []string{"art", "culture", "music", "economics"} {
		if !IsCategory(c) {
			t.Fatalf("%q missing (named in the paper)", c)
		}
	}
	if IsCategory("quantum") {
		t.Fatal("IsCategory accepted unknown")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindClip: "clip", KindNews: "news", KindMusic: "music",
		KindTimeShifted: "timeshifted", Kind(42): "kind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestTopCategory(t *testing.T) {
	it := &Item{Categories: map[string]float64{"music": 0.3, "sport": 0.6, "art": 0.1}}
	if got := it.TopCategory(); got != "sport" {
		t.Fatalf("TopCategory = %q", got)
	}
	if got := (&Item{}).TopCategory(); got != "" {
		t.Fatalf("empty TopCategory = %q", got)
	}
}

func TestSizeBytes(t *testing.T) {
	it := &Item{Duration: time.Minute, BitrateKbps: 96}
	want := int64(96 * 1000 / 8 * 60)
	if got := it.SizeBytes(); got != want {
		t.Fatalf("SizeBytes = %d, want %d", got, want)
	}
	// Default bitrate applies when unset.
	it2 := &Item{Duration: time.Minute}
	if got := it2.SizeBytes(); got != want {
		t.Fatalf("default SizeBytes = %d, want %d", got, want)
	}
}

func TestRepositoryAddValidation(t *testing.T) {
	r := NewRepository()
	if err := r.Add(nil); err == nil {
		t.Fatal("nil item accepted")
	}
	if err := r.Add(&Item{Duration: time.Minute}); err == nil {
		t.Fatal("empty ID accepted")
	}
	if err := r.Add(&Item{ID: "x"}); err == nil {
		t.Fatal("zero duration accepted")
	}
	if err := r.Add(item("a", "music", time.Minute, t0)); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(item("a", "music", time.Minute, t0)); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestRepositoryQueries(t *testing.T) {
	r := NewRepository()
	// Deliberately out of publish order.
	for _, it := range []*Item{
		item("c", "sport", time.Minute, t0.Add(2*time.Hour)),
		item("a", "music", time.Minute, t0),
		item("b", "music", time.Minute, t0.Add(time.Hour)),
	} {
		if err := r.Add(it); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if it, ok := r.Get("b"); !ok || it.ID != "b" {
		t.Fatalf("Get(b) = %v, %v", it, ok)
	}
	if _, ok := r.Get("zz"); ok {
		t.Fatal("Get(zz) ok")
	}
	all := r.All()
	if len(all) != 3 || all[0].ID != "a" || all[1].ID != "b" || all[2].ID != "c" {
		t.Fatalf("All order: %v %v %v", all[0].ID, all[1].ID, all[2].ID)
	}
	music := r.ByCategory("music")
	if len(music) != 2 {
		t.Fatalf("ByCategory(music) = %d items", len(music))
	}
	since := r.PublishedSince(t0.Add(time.Hour))
	if len(since) != 2 || since[0].ID != "b" {
		t.Fatalf("PublishedSince = %d items, first %v", len(since), since[0].ID)
	}
}

func TestRepositoryGeoItems(t *testing.T) {
	r := NewRepository()
	local := item("local", "regional", time.Minute, t0)
	local.Geo = &GeoRelevance{Center: torino, Radius: 2000}
	far := item("far", "regional", time.Minute, t0)
	far.Geo = &GeoRelevance{Center: geo.Destination(torino, 90, 50000), Radius: 2000}
	global := item("global", "music", time.Minute, t0)
	for _, it := range []*Item{local, far, global} {
		if err := r.Add(it); err != nil {
			t.Fatal(err)
		}
	}
	got := r.GeoItems(geo.Destination(torino, 0, 500))
	if len(got) != 1 || got[0].ID != "local" {
		t.Fatalf("GeoItems = %+v", got)
	}
}

// trainedClassifier returns a classifier over two categories.
func trainedClassifier(t *testing.T) *textclass.NaiveBayes {
	t.Helper()
	var nb textclass.NaiveBayes
	docs := []textclass.Document{
		{Tokens: []string{"goal", "partita", "calcio", "derby"}, Category: "sport"},
		{Tokens: []string{"goal", "campionato", "stadio"}, Category: "sport"},
		{Tokens: []string{"ricetta", "vino", "prosecco", "cucina"}, Category: "food"},
		{Tokens: []string{"chef", "ricetta", "champagne"}, Category: "food"},
	}
	if err := nb.Train(docs); err != nil {
		t.Fatal(err)
	}
	return &nb
}

func TestPipelineIngest(t *testing.T) {
	rec, err := asr.New(0.1, asr.DefaultErrorProfile(), []string{"goal", "vino"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := &Pipeline{Recognizer: rec, Classifier: trainedClassifier(t), Repo: NewRepository()}
	it, err := p.Ingest(RawPodcast{
		ID:        "decanter-001",
		Title:     "Champagne, Cava e Prosecco",
		Program:   "Decanter",
		Duration:  8 * time.Minute,
		Published: t0,
		Speech:    "ricetta vino prosecco cucina chef champagne degustazione vino prosecco",
		Kind:      KindClip,
	})
	if err != nil {
		t.Fatal(err)
	}
	if it.TopCategory() != "food" {
		t.Fatalf("TopCategory = %q, want food", it.TopCategory())
	}
	var sum float64
	for _, w := range it.Categories {
		sum += w
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("category mass = %v", sum)
	}
	if _, ok := p.Repo.Get("decanter-001"); !ok {
		t.Fatal("item not stored")
	}
}

func TestPipelineWiringErrors(t *testing.T) {
	p := &Pipeline{}
	if _, err := p.Ingest(RawPodcast{ID: "x"}); err == nil {
		t.Fatal("unwired pipeline accepted")
	}
	rec, _ := asr.New(0, asr.DefaultErrorProfile(), nil, 1)
	p = &Pipeline{Recognizer: rec, Classifier: &textclass.NaiveBayes{}, Repo: NewRepository()}
	if _, err := p.Ingest(RawPodcast{ID: "x", Duration: time.Minute, Speech: "ciao"}); err == nil {
		t.Fatal("untrained classifier accepted")
	}
}

func TestPipelineIngestAll(t *testing.T) {
	rec, _ := asr.New(0, asr.DefaultErrorProfile(), nil, 1)
	p := &Pipeline{Recognizer: rec, Classifier: trainedClassifier(t), Repo: NewRepository()}
	raws := []RawPodcast{
		{ID: "a", Duration: time.Minute, Published: t0, Speech: "goal partita"},
		{ID: "b", Duration: time.Minute, Published: t0, Speech: "vino ricetta"},
	}
	items, err := p.IngestAll(raws)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || p.Repo.Len() != 2 {
		t.Fatalf("ingested %d, repo %d", len(items), p.Repo.Len())
	}
	// Duplicate ID in the batch stops with an error.
	if _, err := p.IngestAll([]RawPodcast{{ID: "a", Duration: time.Minute, Speech: "goal"}}); err == nil {
		t.Fatal("duplicate batch accepted")
	}
}

// TestGeoItemsEquivalenceWithLinearScan cross-checks the R-tree-backed
// GeoItems against the seed's full-table scan on randomized items and
// query points.
func TestGeoItemsEquivalenceWithLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := NewRepository()
	var geoItems []*Item
	for i := 0; i < 400; i++ {
		it := item(fmt.Sprintf("it-%03d", i), "regional", time.Minute, t0.Add(time.Duration(i)*time.Minute))
		if i%3 != 0 { // mix in non-geo items the index must ignore
			center := geo.Destination(torino, rng.Float64()*360, rng.Float64()*30000)
			it.Geo = &GeoRelevance{Center: center, Radius: 200 + rng.Float64()*5000}
			geoItems = append(geoItems, it)
		}
		if err := r.Add(it); err != nil {
			t.Fatal(err)
		}
	}
	linear := func(p geo.Point) map[string]bool {
		out := map[string]bool{}
		for _, it := range geoItems {
			if geo.Distance(p, it.Geo.Center) <= it.Geo.Radius {
				out[it.ID] = true
			}
		}
		return out
	}
	hits := 0
	for q := 0; q < 200; q++ {
		p := geo.Destination(torino, rng.Float64()*360, rng.Float64()*35000)
		want := linear(p)
		got := r.GeoItems(p)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d items from index, %d from scan", q, len(got), len(want))
		}
		for i, it := range got {
			if !want[it.ID] {
				t.Fatalf("query %d: index returned %q, scan did not", q, it.ID)
			}
			if i > 0 && got[i-1].Published.After(it.Published) {
				t.Fatalf("query %d: results not in publish order", q)
			}
		}
		hits += len(got)
	}
	if hits == 0 {
		t.Fatal("degenerate test: no query matched anything")
	}
}
