package content

import (
	"fmt"
	"time"

	"pphcr/internal/asr"
	"pphcr/internal/textclass"
)

// RawPodcast is an editorial podcast as delivered by the broadcaster,
// before classification: audio plus its (ground-truth) speech content.
type RawPodcast struct {
	ID        string
	Title     string
	Program   string
	Duration  time.Duration
	Published time.Time
	// Speech is the spoken content; in the real system this exists only
	// as audio and is recovered by the recognizer.
	Speech string
	Geo    *GeoRelevance
	Kind   Kind
}

// Pipeline is the clip-data-management ingestion path of Fig 3: speech →
// ASR → tokenization → Bayesian classification → repository. The
// classifier must be trained before use.
type Pipeline struct {
	Recognizer *asr.Recognizer
	Classifier *textclass.NaiveBayes
	Repo       *Repository
}

// Ingest processes one raw podcast end to end and returns the stored
// item. The classifier's posterior becomes the item's soft category
// distribution.
func (p *Pipeline) Ingest(raw RawPodcast) (*Item, error) {
	it, err := p.Process(raw)
	if err != nil {
		return nil, err
	}
	if err := p.Repo.Add(it); err != nil {
		return nil, err
	}
	return it, nil
}

// Process runs the recognition + classification stages without storing
// the result — the caller decides when the item becomes visible (the
// durability layer logs it to the WAL first, so the log can never order
// a reference to the item ahead of its creation).
func (p *Pipeline) Process(raw RawPodcast) (*Item, error) {
	if p.Recognizer == nil || p.Classifier == nil || p.Repo == nil {
		return nil, fmt.Errorf("content: pipeline not fully wired")
	}
	recognized := p.Recognizer.TranscribeText(raw.Speech)
	tokens := textclass.Tokenize(recognized)
	dist := p.Classifier.Distribution(tokens)
	if dist == nil {
		return nil, fmt.Errorf("content: classifier untrained")
	}
	// Keep only the meaningful mass: categories below 1% are noise from
	// smoothing and would pollute the preference dot products.
	pruned := make(map[string]float64)
	var kept float64
	for c, w := range dist {
		if w >= 0.01 {
			pruned[c] = w
			kept += w
		}
	}
	if kept > 0 {
		for c := range pruned {
			pruned[c] /= kept
		}
	}
	it := &Item{
		ID:          raw.ID,
		Title:       raw.Title,
		Program:     raw.Program,
		Kind:        raw.Kind,
		Duration:    raw.Duration,
		Published:   raw.Published,
		Categories:  pruned,
		Geo:         raw.Geo,
		BitrateKbps: 96,
	}
	return it, nil
}

// IngestAll ingests a batch, stopping at the first error.
func (p *Pipeline) IngestAll(raws []RawPodcast) ([]*Item, error) {
	out := make([]*Item, 0, len(raws))
	for _, raw := range raws {
		it, err := p.Ingest(raw)
		if err != nil {
			return out, fmt.Errorf("content: ingesting %q: %w", raw.ID, err)
		}
		out = append(out, it)
	}
	return out, nil
}
