package content

import (
	"encoding/json"
	"fmt"
	"io"
)

// Snapshot writes every item as a JSON array, in publish order. Together
// with Restore it gives the repository the dump/load durability story a
// deployment needs (the paper's content repository is a real database).
func (r *Repository) Snapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.All())
}

// Restore loads a snapshot produced by Snapshot into an empty
// repository. Restoring into a non-empty repository fails rather than
// merging, to keep the operation idempotent and predictable.
func (r *Repository) Restore(rd io.Reader) error {
	if r.Len() != 0 {
		return fmt.Errorf("content: restore requires an empty repository (have %d items)", r.Len())
	}
	var items []*Item
	if err := json.NewDecoder(rd).Decode(&items); err != nil {
		return fmt.Errorf("content: decoding snapshot: %w", err)
	}
	for _, it := range items {
		if err := r.Add(it); err != nil {
			return fmt.Errorf("content: restoring %q: %w", it.ID, err)
		}
	}
	return nil
}
