// Package content models the audio items and the content repository of
// the paper's architecture (Fig 3): the podcasts and clips that the clip
// data management component classifies and the recommender draws from.
package content

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pphcr/internal/geo"
	"pphcr/internal/spatial"
)

// Categories is the fixed editorial taxonomy. The paper specifies "a set
// of 30 categories spacing from art to culture, music, economics".
var Categories = []string{
	"art", "culture", "music", "economics", "politics", "sport",
	"food", "travel", "technology", "science", "health", "cinema",
	"literature", "theatre", "history", "religion", "environment",
	"fashion", "education", "crime", "weather", "traffic", "finance",
	"business", "comedy", "society", "international", "regional",
	"interviews", "documentary",
}

// IsCategory reports whether c is one of the 30 editorial categories.
func IsCategory(c string) bool {
	for _, k := range Categories {
		if k == c {
			return true
		}
	}
	return false
}

// Kind distinguishes the item types the system schedules.
type Kind int

// Item kinds. Clips are short on-demand podcast cuts; News items decay
// fast; TimeShifted entries reference a live program replayed from its
// scheduled start (Fig 4's "The rabbit's roar").
const (
	KindClip Kind = iota
	KindNews
	KindMusic
	KindTimeShifted
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindClip:
		return "clip"
	case KindNews:
		return "news"
	case KindMusic:
		return "music"
	case KindTimeShifted:
		return "timeshifted"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// GeoRelevance ties an item to a place: the item is relevant within
// Radius meters of Center (e.g. local news, a venue ad — Fig 2's item B
// "relevant to location L_B").
type GeoRelevance struct {
	Center geo.Point
	Radius float64 // meters
}

// Item is one recommendable audio unit.
type Item struct {
	ID       string
	Title    string
	Program  string // editorial program the clip was cut from
	Kind     Kind
	Duration time.Duration
	// Published is when the item entered the repository; freshness decays
	// from here.
	Published time.Time
	// Categories is the (possibly soft) category distribution assigned by
	// the classifier; weights sum to ~1.
	Categories map[string]float64
	// Geo is non-nil for geographically scoped items.
	Geo *GeoRelevance
	// Bitrate of the encoded audio, kbps; used by bandwidth accounting.
	BitrateKbps int
}

// TopCategory returns the argmax category (empty for an empty map).
func (it *Item) TopCategory() string {
	best, bestW := "", -1.0
	for c, w := range it.Categories {
		if w > bestW || (w == bestW && c < best) {
			best, bestW = c, w
		}
	}
	return best
}

// SizeBytes returns the approximate encoded size of the item's audio.
func (it *Item) SizeBytes() int64 {
	kbps := it.BitrateKbps
	if kbps <= 0 {
		kbps = 96 // the paper's stream bitrate
	}
	return int64(float64(kbps) * 1000 / 8 * it.Duration.Seconds())
}

// VectorIndex is the hook through which an embedding index (the ANN
// retrieval path, internal/ann) tracks the catalog. It is satisfied by
// *ann.Index; the indirection keeps content free of embedding imports.
// Insert is called with the repository lock held, so implementations
// must not call back into the Repository (lock hierarchy: store locks
// at level 30 sit above the vector-index lock at level 40 —
// docs/analysis.md).
type VectorIndex interface {
	Insert(it *Item)
}

// Repository is the thread-safe content store with the secondary indexes
// the recommender needs: by ID, by top category, by publish time, and —
// for geographically scoped items — an R-tree over their relevance
// discs, so GeoItems answers point queries without scanning the table.
// When a VectorIndex is attached, every item is additionally embedded
// into it on Add, beside the R-tree.
type Repository struct {
	mu      sync.RWMutex
	items   map[string]*Item
	byCat   map[string][]string // top category -> item IDs
	sorted  []string            // IDs ordered by Published asc
	geoTree *spatial.RTree      // rects around geo discs -> geoIDs index
	geoIDs  []string            // R-tree leaf id -> item ID
	vecIx   VectorIndex         // optional ANN mirror of the catalog
}

// SetVectorIndex attaches (or detaches, with nil) the embedding index.
// Items already in the repository are backfilled, so attachment order
// relative to Restore does not matter. Holding the write lock while
// backfilling keeps the "item visible implies item indexed" invariant.
func (r *Repository) SetVectorIndex(ix VectorIndex) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.vecIx = ix
	if ix == nil {
		return
	}
	for _, id := range r.sorted {
		ix.Insert(r.items[id])
	}
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{
		items:   make(map[string]*Item),
		byCat:   make(map[string][]string),
		geoTree: spatial.NewRTree(),
	}
}

// Add inserts an item. It rejects duplicates, empty IDs and non-positive
// durations.
func (r *Repository) Add(it *Item) error {
	if it == nil || it.ID == "" {
		return fmt.Errorf("content: item must have an ID")
	}
	if it.Duration <= 0 {
		return fmt.Errorf("content: item %q must have positive duration", it.ID)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.items[it.ID]; dup {
		return fmt.Errorf("content: duplicate item %q", it.ID)
	}
	r.items[it.ID] = it
	top := it.TopCategory()
	if top != "" {
		r.byCat[top] = append(r.byCat[top], it.ID)
	}
	if it.Geo != nil {
		r.geoTree.Insert(geo.RectAround(it.Geo.Center, it.Geo.Radius), len(r.geoIDs))
		r.geoIDs = append(r.geoIDs, it.ID)
	}
	// Insert into the publish-ordered list (items arrive mostly in
	// order, so the scan from the tail is effectively O(1)).
	idx := len(r.sorted)
	for idx > 0 && r.items[r.sorted[idx-1]].Published.After(it.Published) {
		idx--
	}
	r.sorted = append(r.sorted, "")
	copy(r.sorted[idx+1:], r.sorted[idx:])
	r.sorted[idx] = it.ID
	if r.vecIx != nil {
		r.vecIx.Insert(it)
	}
	return nil
}

// Get returns the item with the given ID.
func (r *Repository) Get(id string) (*Item, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	it, ok := r.items[id]
	return it, ok
}

// Len returns the number of items.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.items)
}

// All returns every item ordered by ascending publish time.
func (r *Repository) All() []*Item {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Item, len(r.sorted))
	for i, id := range r.sorted {
		out[i] = r.items[id]
	}
	return out
}

// ByCategory returns the items whose top category matches, in insertion
// order.
func (r *Repository) ByCategory(cat string) []*Item {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := r.byCat[cat]
	out := make([]*Item, len(ids))
	for i, id := range ids {
		out[i] = r.items[id]
	}
	return out
}

// PublishedSince returns items published at or after t, ascending.
func (r *Repository) PublishedSince(t time.Time) []*Item {
	return r.AppendPublishedSince(nil, t)
}

// AppendPublishedSince appends the items published at or after t to dst
// (ascending by publish time), reusing its capacity — the allocation-free
// variant for ranking paths that rebuild the candidate window per
// request.
func (r *Repository) AppendPublishedSince(dst []*Item, t time.Time) []*Item {
	r.mu.RLock()
	defer r.mu.RUnlock()
	// Binary search over the sorted list.
	i := sort.Search(len(r.sorted), func(i int) bool {
		return !r.items[r.sorted[i]].Published.Before(t)
	})
	for _, id := range r.sorted[i:] {
		dst = append(dst, r.items[id])
	}
	return dst
}

// GeoItems returns the items whose geographic scope contains p, ordered
// by ascending publish time (ties by ID). The query walks the R-tree
// over the items' relevance discs instead of scanning the whole table.
func (r *Repository) GeoItems(p geo.Point) []*Item {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := r.geoTree.Search(geo.PointRect(p), nil)
	out := make([]*Item, 0, len(ids))
	for _, id := range ids {
		it := r.items[r.geoIDs[id]]
		if geo.Distance(p, it.Geo.Center) <= it.Geo.Radius {
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Published.Equal(out[j].Published) {
			return out[i].Published.Before(out[j].Published)
		}
		return out[i].ID < out[j].ID
	})
	return out
}
