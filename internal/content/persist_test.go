package content

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRepositorySnapshotRestore(t *testing.T) {
	r := NewRepository()
	geoIt := item("geo", "regional", 2*time.Minute, t0)
	geoIt.Geo = &GeoRelevance{Center: torino, Radius: 1200}
	for _, it := range []*Item{
		item("a", "music", time.Minute, t0.Add(time.Hour)),
		item("b", "food", 3*time.Minute, t0),
		geoIt,
	} {
		if err := r.Add(it); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := r.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewRepository()
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 3 {
		t.Fatalf("restored %d items", restored.Len())
	}
	// Publish order preserved.
	all := restored.All()
	if all[0].ID != "b" && all[0].ID != "geo" {
		t.Fatalf("order: first = %s", all[0].ID)
	}
	got, ok := restored.Get("geo")
	if !ok || got.Geo == nil || got.Geo.Radius != 1200 {
		t.Fatalf("geo relevance lost: %+v", got)
	}
	if got.TopCategory() != "regional" {
		t.Fatalf("categories lost: %v", got.Categories)
	}
	// Indexes rebuilt.
	if len(restored.ByCategory("music")) != 1 {
		t.Fatal("category index not rebuilt")
	}
}

func TestRepositoryRestoreValidation(t *testing.T) {
	r := NewRepository()
	if err := r.Add(item("a", "music", time.Minute, t0)); err != nil {
		t.Fatal(err)
	}
	if err := r.Restore(strings.NewReader("[]")); err == nil {
		t.Fatal("restore into non-empty repo accepted")
	}
	fresh := NewRepository()
	if err := fresh.Restore(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad json accepted")
	}
}
