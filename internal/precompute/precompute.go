// Package precompute is the proactive plan-warming subsystem: a
// background scheduler that keeps the plan cache populated *before*
// listeners start driving, so that PlanTrip can answer from a warm entry
// instead of running the full predict→rank→allocate pipeline
// synchronously. It subscribes to the broker events that change either
// what a user will do next or what should be recommended:
//
//   - tracking.compacted — a user's mobility model was rebuilt; their
//     likely next trips changed (and the old cache keys died with the
//     renumbered staying points), so re-enumerate and re-warm.
//   - feedback.# — the preference vector moved; the System already
//     invalidated the user's entries inline, the scheduler re-warms them.
//     Re-warming reads the preference vector from the feedback store's
//     incremental index (via System.Preferences), so a warm pass costs
//     O(categories) per user regardless of feedback-history length —
//     feedback *compaction* ("prefs.compacted") deliberately does not
//     reach this subscription, since it never moves the vector.
//   - content.ingested.# — a new clip entered every candidate set; the
//     System bumped the cache epoch, the scheduler re-warms all users
//     with mobility models.
//
// For each affected user the scheduler walks the Markov chain of the
// compact mobility model: every origin place × the time buckets of the
// warm-ahead window × the top-K destination candidates above a
// probability floor becomes one warm job. Jobs flow through a bounded
// queue into a fixed worker pool (drops are counted, never blocked on);
// each worker coalesces queued jobs into System.WarmBatch calls, which
// plan through the same staged pipeline the cold path uses — acquiring
// the candidate set and each user's decayed preferences once per batch —
// and store the results in the plan cache.
package precompute

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pphcr"
	"pphcr/internal/broker"
	"pphcr/internal/plancache"
	"pphcr/internal/predict"
)

// Config tunes the scheduler.
type Config struct {
	// Workers is the size of the warm worker pool. Default 4.
	Workers int
	// TopK bounds how many destination candidates are warmed per
	// (origin, bucket). Default 2.
	TopK int
	// MinProb is the probability floor below which a destination is not
	// worth warming. Default 0.2.
	MinProb float64
	// WarmAheadBuckets is how many time buckets of trips to warm,
	// starting at the enumeration instant (1 = current bucket only).
	// Default 1.
	WarmAheadBuckets int
	// QueueSize bounds the pending-job queue; enumeration never blocks —
	// jobs beyond the bound are dropped and counted. Default 256.
	QueueSize int
	// BatchSize bounds how many queued warm jobs are executed together
	// through one System.WarmBatch call, which shares the candidate
	// acquisition + featurization across the whole batch. Default 16.
	BatchSize int
	// Now supplies the scheduling clock used by Run's event loop. The
	// server anchors it to the synthetic world's timeline; nil means
	// time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.TopK <= 0 {
		c.TopK = 2
	}
	if c.MinProb <= 0 {
		c.MinProb = 0.2
	}
	if c.WarmAheadBuckets <= 0 {
		c.WarmAheadBuckets = 1
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Job is one anticipated trip to precompute a plan for.
type Job struct {
	User       string
	From, Dest predict.PlaceID
	Prob       float64
	At         time.Time
}

// Stats snapshots the scheduler counters.
type Stats struct {
	EventsCompacted int64 `json:"events_compacted"`
	EventsFeedback  int64 `json:"events_feedback"`
	EventsContent   int64 `json:"events_content"`
	JobsQueued      int64 `json:"jobs_queued"`
	JobsDropped     int64 `json:"jobs_dropped"`
	JobsSkipped     int64 `json:"jobs_skipped"` // already warm in cache
	PlansWarmed     int64 `json:"plans_warmed"`
	WarmDeclined    int64 `json:"warm_declined"` // phase 1 said no
	WarmErrors      int64 `json:"warm_errors"`
}

// Scheduler drives plan warming off the system broker. Create with New;
// run with Run (worker pool + event loop) or drive synchronously with
// Poll + Drain in tests and batch tools.
type Scheduler struct {
	cfg  Config
	sys  *pphcr.System
	jobs chan Job

	compactQ  *broker.Queue
	feedbackQ *broker.Queue
	contentQ  *broker.Queue

	// usersBuf is reused across Polls for the mobility population sweep
	// (Poll runs on the single event-loop goroutine, never concurrently).
	usersBuf []string

	eventsCompacted atomic.Int64
	eventsFeedback  atomic.Int64
	eventsContent   atomic.Int64
	jobsQueued      atomic.Int64
	jobsDropped     atomic.Int64
	jobsSkipped     atomic.Int64
	plansWarmed     atomic.Int64
	warmDeclined    atomic.Int64
	warmErrors      atomic.Int64
}

// New binds the scheduler's queues on the system broker.
func New(sys *pphcr.System, cfg Config) (*Scheduler, error) {
	cfg = cfg.withDefaults()
	s := &Scheduler{cfg: cfg, sys: sys, jobs: make(chan Job, cfg.QueueSize)}
	var err error
	if s.compactQ, err = sys.Broker.Bind("precompute-compacted", "tracking.compacted"); err != nil {
		return nil, fmt.Errorf("precompute: binding compaction queue: %w", err)
	}
	if s.feedbackQ, err = sys.Broker.Bind("precompute-feedback", "feedback.#"); err != nil {
		return nil, fmt.Errorf("precompute: binding feedback queue: %w", err)
	}
	if s.contentQ, err = sys.Broker.Bind("precompute-content", "content.ingested.#"); err != nil {
		return nil, fmt.Errorf("precompute: binding content queue: %w", err)
	}
	return s, nil
}

// Poll drains the three event queues once and enqueues warm jobs for
// every affected user, as of instant now. Content events re-warm the
// whole mobility population (coalesced: many ingests in one poll trigger
// one pass). It returns the number of jobs enqueued.
func (s *Scheduler) Poll(now time.Time) int {
	users := make(map[string]bool)
	drain := func(q *broker.Queue, counter *atomic.Int64) int {
		n := 0
		for {
			msg, ok := q.Pop()
			if !ok {
				return n
			}
			n++
			counter.Add(1)
			users[string(msg.Payload)] = true
			_ = q.Ack(msg.ID)
		}
	}
	drain(s.compactQ, &s.eventsCompacted)
	drain(s.feedbackQ, &s.eventsFeedback)

	content := 0
	for {
		msg, ok := s.contentQ.Pop()
		if !ok {
			break
		}
		content++
		s.eventsContent.Add(1)
		_ = s.contentQ.Ack(msg.ID)
	}
	if content > 0 {
		s.usersBuf = s.sys.AppendMobilityUsers(s.usersBuf[:0])
		for _, u := range s.usersBuf {
			users[u] = true
		}
	}

	queued := 0
	for u := range users {
		// Event-triggered re-warms force: an in-flight warm racing the
		// invalidation may have re-inserted a pre-event plan, and the
		// Contains skip would leave it serving until its TTL.
		queued += s.warmUser(u, now, true)
	}
	return queued
}

// WarmUser enumerates the user's likely next trips and enqueues one warm
// job per (origin, bucket, top destination) not already warm in the
// cache. It returns the number of jobs enqueued.
func (s *Scheduler) WarmUser(user string, now time.Time) int {
	return s.warmUser(user, now, false)
}

func (s *Scheduler) warmUser(user string, now time.Time, force bool) int {
	cm, ok := s.sys.MobilityModel(user)
	if !ok {
		return 0
	}
	m := cm.Mobility
	queued := 0
	seen := make(map[plancache.Key]bool)
	for ahead := 0; ahead < s.cfg.WarmAheadBuckets; ahead++ {
		at := now.Add(time.Duration(ahead) * predict.BucketDuration)
		bucket := predict.BucketOf(at)
		for _, from := range m.Origins() {
			for i, c := range m.PredictDestination(from, at) {
				if i >= s.cfg.TopK || c.Prob < s.cfg.MinProb {
					break
				}
				key := plancache.Key{User: user, Dest: c.Place, Bucket: bucket}
				if seen[key] {
					continue
				}
				seen[key] = true
				if !force && s.sys.PlanCache.Contains(key) {
					s.jobsSkipped.Add(1)
					continue
				}
				select {
				case s.jobs <- Job{User: user, From: from, Dest: c.Place, Prob: c.Prob, At: at}:
					s.jobsQueued.Add(1)
					queued++
				default:
					s.jobsDropped.Add(1)
				}
			}
		}
	}
	return queued
}

// Drain executes every currently queued job in the calling goroutine,
// in WarmBatch groups of up to BatchSize, and returns how many plans
// were warmed. Used by tests and poll-mode callers; under Run the
// worker pool consumes the same channel.
func (s *Scheduler) Drain() int {
	warmed := 0
	batch := make([]pphcr.WarmRequest, 0, s.cfg.BatchSize)
	for {
		batch = batch[:0]
	collect:
		for len(batch) < s.cfg.BatchSize {
			select {
			case j := <-s.jobs:
				batch = append(batch, warmRequest(j))
			default:
				break collect
			}
		}
		if len(batch) == 0 {
			return warmed
		}
		warmed += s.executeBatch(batch)
	}
}

func warmRequest(j Job) pphcr.WarmRequest {
	return pphcr.WarmRequest{UserID: j.User, From: j.From, Dest: j.Dest, Prob: j.Prob, At: j.At}
}

// executeBatch runs one WarmBatch over the collected jobs and folds the
// per-job outcomes into the counters. Batching shares one candidate
// featurization and one preference read per user across the whole
// group — the pipeline's amortized execution path.
func (s *Scheduler) executeBatch(reqs []pphcr.WarmRequest) int {
	warmed := 0
	for _, r := range s.sys.WarmBatch(reqs) {
		switch {
		case r.Err != nil:
			s.warmErrors.Add(1)
		case !r.Plan.Proactive || len(r.Plan.Plan.Items) == 0:
			s.warmDeclined.Add(1)
		default:
			s.plansWarmed.Add(1)
			warmed++
		}
	}
	return warmed
}

// Run starts the worker pool and the event loop and blocks until stop is
// closed. Intended to run as a goroutine in the server binary, next to
// the tracking compactor. Each worker coalesces whatever is queued (up
// to BatchSize) into one WarmBatch call instead of planning job by job.
func (s *Scheduler) Run(stop <-chan struct{}) {
	var wg sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := make([]pphcr.WarmRequest, 0, s.cfg.BatchSize)
			for {
				select {
				case <-stop:
					return
				case j := <-s.jobs:
					batch = append(batch[:0], warmRequest(j))
				coalesce:
					for len(batch) < s.cfg.BatchSize {
						select {
						case j := <-s.jobs:
							batch = append(batch, warmRequest(j))
						default:
							break coalesce
						}
					}
					s.executeBatch(batch)
				}
			}
		}()
	}
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			wg.Wait()
			return
		case <-s.compactQ.Notify():
		case <-s.feedbackQ.Notify():
		case <-s.contentQ.Notify():
		case <-ticker.C:
			s.sys.PlanCache.Sweep()
		}
		s.Poll(s.cfg.Now())
	}
}

// Backlog returns the number of jobs waiting for a worker.
func (s *Scheduler) Backlog() int { return len(s.jobs) }

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		EventsCompacted: s.eventsCompacted.Load(),
		EventsFeedback:  s.eventsFeedback.Load(),
		EventsContent:   s.eventsContent.Load(),
		JobsQueued:      s.jobsQueued.Load(),
		JobsDropped:     s.jobsDropped.Load(),
		JobsSkipped:     s.jobsSkipped.Load(),
		PlansWarmed:     s.plansWarmed.Load(),
		WarmDeclined:    s.warmDeclined.Load(),
		WarmErrors:      s.warmErrors.Load(),
	}
}
