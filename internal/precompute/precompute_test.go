package precompute

import (
	"testing"
	"time"

	"pphcr"
	"pphcr/internal/feedback"
	"pphcr/internal/plancache"
	"pphcr/internal/predict"
	"pphcr/internal/synth"
)

// testSystem builds a system with a dense-enough corpus that warm plans
// actually schedule items, feeds one persona's commute history, and
// compacts it. warmAt is a weekday-morning instant with fresh candidates.
func testSystem(t testing.TB) (sys *pphcr.System, w *synth.World, user string, warmAt time.Time) {
	t.Helper()
	w, err := synth.GenerateWorld(synth.Params{
		Seed: 21, Days: 5, Users: 2, Stations: 2, PodcastsPerDay: 40,
		TrainingDocsPerCategory: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err = pphcr.New(pphcr.Config{TrainingDocs: w.Training, Vocabulary: w.FlatVocab})
	if err != nil {
		t.Fatal(err)
	}
	persona := w.Personas[0]
	user = persona.Profile.UserID
	if err := sys.RegisterUser(persona.Profile); err != nil {
		t.Fatal(err)
	}
	for _, raw := range w.Corpus {
		if _, err := sys.IngestPodcast(raw); err != nil {
			t.Fatal(err)
		}
	}
	for d := 0; d < w.Params.Days; d++ {
		day := w.Params.StartDate.AddDate(0, 0, d)
		if wd := day.Weekday(); wd == time.Saturday || wd == time.Sunday {
			continue
		}
		for _, morning := range []bool{true, false} {
			trace, _, err := w.CommuteTrace(persona, day, morning)
			if err != nil {
				t.Fatal(err)
			}
			for _, fix := range trace {
				if err := sys.RecordFix(user, fix); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if _, err := sys.CompactTracking(user); err != nil {
		t.Fatal(err)
	}
	// Next Monday, 8 am: within the candidate window of the last content
	// day and inside the weekday-morning transition bucket.
	warmAt = w.Params.StartDate.AddDate(0, 0, 7).Add(8 * time.Hour)
	return sys, w, user, warmAt
}

func TestWarmUserPopulatesCache(t *testing.T) {
	sys, _, user, warmAt := testSystem(t)
	sched, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	queued := sched.WarmUser(user, warmAt)
	if queued == 0 {
		t.Fatal("no warm jobs enumerated")
	}
	warmed := sched.Drain()
	if warmed == 0 {
		t.Fatalf("no plans warmed (stats %+v)", sched.Stats())
	}
	if sys.PlanCache.Len() == 0 {
		t.Fatal("cache still empty after warming")
	}
	// Re-enumerating skips entries that are already warm.
	sched.WarmUser(user, warmAt)
	if st := sched.Stats(); st.JobsSkipped == 0 {
		t.Fatalf("already-warm keys re-queued: %+v", st)
	}
	// Unknown users enumerate nothing.
	if n := sched.WarmUser("ghost", warmAt); n != 0 {
		t.Fatalf("warmed ghost user: %d", n)
	}
}

func TestPollReactsToCompaction(t *testing.T) {
	sys, _, user, warmAt := testSystem(t)
	sched, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The CompactTracking call in testSystem happened before the
	// scheduler bound its queues, so prime with a fresh compaction event.
	if _, err := sys.CompactTracking(user); err != nil {
		t.Fatal(err)
	}
	if queued := sched.Poll(warmAt); queued == 0 {
		t.Fatal("compaction event did not queue warm jobs")
	}
	sched.Drain()
	st := sched.Stats()
	if st.EventsCompacted == 0 || st.PlansWarmed == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// An idle poll does nothing.
	if queued := sched.Poll(warmAt); queued != 0 {
		t.Fatalf("idle poll queued %d jobs", queued)
	}
}

func TestFeedbackInvalidatesAndRewarms(t *testing.T) {
	sys, _, user, warmAt := testSystem(t)
	sched, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sched.WarmUser(user, warmAt)
	if sched.Drain() == 0 {
		t.Fatal("priming failed")
	}
	entries := sys.PlanCache.Len()
	// Feedback: the System invalidates the user's entries inline...
	it := sys.Repo.All()[0]
	if err := sys.AddFeedback(feedback.Event{
		UserID: user, ItemID: it.ID, Kind: feedback.Like, At: warmAt,
		Categories: it.Categories,
	}); err != nil {
		t.Fatal(err)
	}
	if sys.PlanCache.Len() >= entries {
		t.Fatal("feedback did not invalidate warm plans")
	}
	// ...and the scheduler re-warms them off the broker event.
	if queued := sched.Poll(warmAt); queued == 0 {
		t.Fatal("feedback event did not queue re-warm jobs")
	}
	sched.Drain()
	if sys.PlanCache.Len() != entries {
		t.Fatalf("re-warm incomplete: %d entries, want %d", sys.PlanCache.Len(), entries)
	}
	if st := sched.Stats(); st.EventsFeedback == 0 {
		t.Fatalf("feedback events not counted: %+v", st)
	}
}

func TestContentEventRewarmsMobilityUsers(t *testing.T) {
	sys, w, user, warmAt := testSystem(t)
	sched, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sched.WarmUser(user, warmAt)
	sched.Drain()
	if sys.PlanCache.Len() == 0 {
		t.Fatal("priming failed")
	}
	// New content bumps the cache epoch (everything stale) and emits a
	// content.ingested event.
	fresh := w.Corpus[0]
	fresh.ID = "pod-breaking-news"
	fresh.Published = warmAt.Add(-time.Hour)
	if _, err := sys.IngestPodcast(fresh); err != nil {
		t.Fatal(err)
	}
	if sys.PlanCache.Contains(plancache.Key{User: user, Dest: 0, Bucket: predict.BucketOf(warmAt)}) &&
		sys.PlanCache.Contains(plancache.Key{User: user, Dest: 1, Bucket: predict.BucketOf(warmAt)}) {
		t.Fatal("content ingestion left warm plans fresh")
	}
	if queued := sched.Poll(warmAt); queued == 0 {
		t.Fatal("content event did not queue re-warm jobs")
	}
	sched.Drain()
	st := sched.Stats()
	if st.EventsContent == 0 || st.PlansWarmed == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueueBoundDropsNotBlocks(t *testing.T) {
	sys, _, user, warmAt := testSystem(t)
	sched, err := New(sys, Config{QueueSize: 1, TopK: 4, MinProb: 0.01, WarmAheadBuckets: 3})
	if err != nil {
		t.Fatal(err)
	}
	sched.WarmUser(user, warmAt) // must not block despite the 1-slot queue
	st := sched.Stats()
	if st.JobsQueued != 1 {
		t.Fatalf("queued = %d, want 1", st.JobsQueued)
	}
	if st.JobsDropped == 0 {
		t.Fatal("overflow jobs not counted as dropped")
	}
	if sched.Backlog() != 1 {
		t.Fatalf("backlog = %d", sched.Backlog())
	}
}

func TestWarmAheadCoversFutureBuckets(t *testing.T) {
	sys, _, user, warmAt := testSystem(t)
	sched, err := New(sys, Config{WarmAheadBuckets: 2, QueueSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	sched.WarmUser(user, warmAt)
	sched.Drain()
	buckets := map[predict.TimeBucket]bool{}
	for ahead := 0; ahead < 2; ahead++ {
		b := predict.BucketOf(warmAt.Add(time.Duration(ahead) * predict.BucketDuration))
		for dest := 0; dest < 2; dest++ {
			if sys.PlanCache.Contains(plancache.Key{User: user, Dest: predict.PlaceID(dest), Bucket: b}) {
				buckets[b] = true
			}
		}
	}
	if len(buckets) < 2 {
		t.Fatalf("warm-ahead covered buckets %v, want 2", buckets)
	}
}

// TestRunLoopWarmsConcurrently exercises the full event-driven path —
// broker notify → poll → bounded worker pool → plan cache — with the
// race detector watching.
func TestRunLoopWarmsConcurrently(t *testing.T) {
	sys, _, user, warmAt := testSystem(t)
	sched, err := New(sys, Config{Workers: 3, Now: func() time.Time { return warmAt }})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		sched.Run(stop)
		close(done)
	}()
	// Fire a compaction event; the run loop must pick it up and warm.
	if _, err := sys.CompactTracking(user); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for sys.PlanCache.Len() == 0 {
		select {
		case <-deadline:
			t.Fatalf("run loop never warmed (stats %+v)", sched.Stats())
		case <-time.After(20 * time.Millisecond):
		}
	}
	close(stop)
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("run loop did not stop")
	}
}
