// Package pphcr is the public API of the Proactive Personalized Hybrid
// Content Radio system — a reproduction of Casagranda, Sapino and
// Candan, "Context-Aware Proactive Personalization of Linear Audio
// Content" (EDBT 2017).
//
// A System wires together every server component of the paper's
// architecture (Fig 3): the content repository fed by the ASR +
// Bayesian-classification ingestion pipeline, the user management
// stores (profiles, feedbacks, tracking data), the message broker, and
// the proactive recommender that plans context-aware replacements of the
// linear radio stream.
//
// Typical use:
//
//	sys, err := pphcr.New(pphcr.Config{TrainingDocs: docs})
//	...
//	sys.RegisterUser(profile.Profile{UserID: "lilly", ...})
//	sys.IngestPodcast(raw)            // ASR → classify → repository
//	sys.RecordFix("lilly", fix)       // GPS tracking
//	sys.AddFeedback(event)            // implicit/explicit feedback
//	sys.CompactTracking("lilly")      // periodic mobility compaction
//	plan, err := sys.PlanTrip("lilly", partialTrace, now)
package pphcr

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pphcr/internal/ann"
	"pphcr/internal/asr"
	"pphcr/internal/broker"
	"pphcr/internal/content"
	"pphcr/internal/core"
	"pphcr/internal/distraction"
	"pphcr/internal/durable"
	"pphcr/internal/feedback"
	"pphcr/internal/obs"
	"pphcr/internal/pipeline"
	"pphcr/internal/plancache"
	"pphcr/internal/predict"
	"pphcr/internal/profile"
	"pphcr/internal/radiodns"
	"pphcr/internal/recommend"
	"pphcr/internal/textclass"
	"pphcr/internal/tracking"
	"pphcr/internal/trajectory"
)

// Config parameterizes a System.
type Config struct {
	// ContextWeight is λ of the compound relevance score. Default 0.4.
	ContextWeight float64
	// ASRWordErrorRate simulates the recognizer quality. Default 0.15.
	ASRWordErrorRate float64
	// Vocabulary seeds the ASR confusion pool (usually the corpus
	// vocabulary).
	Vocabulary []string
	// TrainingDocs trains the Bayesian classifier; required.
	TrainingDocs []textclass.Document
	// Seed drives all simulated randomness. Default 1.
	Seed int64
	// CandidateWindow bounds how far back the recommender looks for
	// candidate clips. Default 72h.
	CandidateWindow time.Duration
	// PlanCacheShards is the shard count of the warm-plan cache.
	// Default plancache.DefaultShards (32).
	PlanCacheShards int
	// PlanTTL is how long a precomputed trip plan may be served before it
	// is considered stale. Default plancache.DefaultTTL (10 minutes).
	PlanTTL time.Duration
	// UserShards is the stripe count of the per-user state shards
	// (mobility models, pending injections, last plans). Rounded up to a
	// power of two. Default DefaultUserShards (32).
	UserShards int
	// ANNCandidates enables embedding-based candidate retrieval: an
	// HNSW index over quantized item embeddings is maintained on ingest
	// (beside the R-tree) and the pipeline's Candidates stage queries it
	// instead of scanning the publish window — sublinear in catalog size
	// at pinned recall. The index is derived state: snapshots and WAL
	// replay rebuild it through the ordinary Repository restore path.
	ANNCandidates bool
	// ANNRetrieve is the per-query candidate budget (default 256).
	// Indexes no larger than the budget are retrieved exactly, making
	// small-catalog plans byte-identical to the exact stage.
	ANNRetrieve int
	// ANNEf is the HNSW search beam width (default 2×ANNRetrieve).
	ANNEf int
	// ANNProbeEvery samples every Nth retrieval with a brute-force
	// recall probe feeding the recall_at_k gauge (0 = off).
	ANNProbeEvery int
}

// DefaultUserShards is the default stripe count of the per-user state.
const DefaultUserShards = 32

// userShard is one stripe of the per-user server state. Striping by a
// hash of the user ID means concurrent PlanTrip / AddFeedback /
// CompactTracking calls for different users (almost) never contend on
// the same mutex — the seed serialized all of them behind one global
// lock.
type userShard struct {
	mu       sync.RWMutex
	mobility map[string]*tracking.CompactModel
	// compactN records how many fixes of the user's trace the mobility
	// model was compacted from — the provenance a snapshot needs so
	// recovery can re-derive the byte-identical model from the same
	// trace prefix (compaction is deterministic in its input).
	compactN  map[string]int
	injected  map[string][]string // user -> editorially injected item IDs
	lastPlans map[string]*TripPlan
}

// LockStats reports the user-shard locking counters: how many lock
// acquisitions the per-user state saw and how many of them found the
// shard already held (a TryLock-miss proxy for contention). With the
// seed's single global mutex every concurrent pair contended; with
// striping the contended fraction should stay near zero.
type LockStats struct {
	Shards    int   `json:"shards"`
	Ops       int64 `json:"ops"`
	Contended int64 `json:"contended"`
	// Barrier reports the commit-barrier stripe counters.
	Barrier BarrierStats `json:"barrier"`
}

// BarrierStats are the commit barrier's contention counters: every
// durable write path takes one stripe's read side, so Contended stays
// near zero except while a checkpoint quiesce is in flight (or when a
// workload hammers few users). PerStripeContended localizes a hot
// stripe.
type BarrierStats struct {
	Stripes            int     `json:"stripes"`
	Ops                int64   `json:"ops"`
	Contended          int64   `json:"contended"`
	Quiesces           int64   `json:"quiesces"`
	PerStripeContended []int64 `json:"per_stripe_contended,omitempty"`
	// AcquireWait is the latency distribution of contended stripe
	// acquisitions only — the wait a writer ate because a quiesce (or a
	// hot stripe) held it out. Uncontended acquisitions are not timed:
	// the fast path stays two atomics and a TryRLock.
	AcquireWait obs.Summary `json:"acquire_wait"`
	// QuiesceAcquire is the distribution of quiesce entry times — how
	// long the checkpointer waited for in-flight writers to drain.
	QuiesceAcquire obs.Summary `json:"quiesce_acquire"`
}

// barrierStripe is one stripe of the commit barrier, padded to a cache
// line so concurrent writers on different stripes never false-share the
// reader counts — the single global RWMutex this replaces made every
// mutating entry point (and the pure reads that shared its cache line)
// bounce one word across every core.
type barrierStripe struct {
	mu        sync.RWMutex
	ops       atomic.Int64
	contended atomic.Int64
	_         [64 - 24 - 16]byte
}

// commitBarrier fences the durable write paths against the
// checkpointer, striped so writers for different users share nothing.
// Writers take only their user-shard stripe's read side; the
// checkpointer (and hook swaps) quiesce by write-locking every stripe.
// Pure read paths never touch it.
type commitBarrier struct {
	stripes  []barrierStripe
	quiesces atomic.Int64
	// acquireHist records the wait of contended stripe acquisitions
	// (TryRLock miss → blocking RLock). The uncontended fast path is
	// deliberately not timed: it would cost two clock reads per write op
	// to measure a wait that is zero by construction.
	acquireHist obs.Histogram
	// quiesceHist records how long quiesce() waited to write-lock every
	// stripe — the writer-drain time a checkpoint pays before it can
	// snapshot.
	quiesceHist obs.Histogram
}

// rlock takes the read side of one stripe, counting acquisitions that
// found it held by a quiesce. It returns the nanoseconds the caller
// waited (0 on the uncontended fast path), so traced write paths can
// attribute quiesce stalls to a barrier-wait span.
func (b *commitBarrier) rlock(i uint32) int64 {
	st := &b.stripes[i]
	st.ops.Add(1)
	if st.mu.TryRLock() {
		return 0
	}
	st.contended.Add(1)
	start := time.Now()
	st.mu.RLock()
	waited := time.Since(start).Nanoseconds()
	b.acquireHist.ObserveNs(waited)
	return waited
}

func (b *commitBarrier) runlock(i uint32) { b.stripes[i].mu.RUnlock() }

// quiesce write-locks every stripe in order, excluding every durable
// write path; release unlocks in reverse. The pair brackets checkpoint
// snapshots and mutation-hook swaps.
func (b *commitBarrier) quiesce() {
	b.quiesces.Add(1)
	start := time.Now()
	for i := range b.stripes {
		b.stripes[i].mu.Lock()
	}
	b.quiesceHist.Observe(time.Since(start))
}

func (b *commitBarrier) release() {
	for i := len(b.stripes) - 1; i >= 0; i-- {
		b.stripes[i].mu.Unlock()
	}
}

// stats snapshots the barrier counters.
func (b *commitBarrier) stats() BarrierStats {
	s := BarrierStats{
		Stripes:            len(b.stripes),
		Quiesces:           b.quiesces.Load(),
		PerStripeContended: make([]int64, len(b.stripes)),
	}
	for i := range b.stripes {
		st := &b.stripes[i]
		s.Ops += st.ops.Load()
		c := st.contended.Load()
		s.Contended += c
		s.PerStripeContended[i] = c
	}
	s.AcquireWait = b.acquireHist.Summary()
	s.QuiesceAcquire = b.quiesceHist.Summary()
	return s
}

// System is the PPHCR content server.
type System struct {
	Directory *radiodns.Directory
	Repo      *content.Repository
	Profiles  *profile.Store
	Feedback  *feedback.Store
	Tracker   *tracking.Tracker
	Broker    *broker.Broker
	Scorer    *recommend.Scorer
	Planner   *core.Planner
	// PlanCache holds precomputed trip plans keyed by (user, predicted
	// destination, time bucket); PlanTrip serves from it when the live
	// prediction matches a warm entry.
	PlanCache *plancache.Cache

	ingest          *content.Pipeline
	candidateWindow time.Duration

	// annIndex is the embedding index behind the ANN Candidates stage;
	// nil unless Config.ANNCandidates was set. It mirrors the Repo
	// catalog (inserts happen inside Repository.Add) and rebuilds from
	// it on restore/replay.
	annIndex *ann.Index

	// pipe is the staged planning pipeline (predict → gate → candidates →
	// rank → allocate) every public entry point executes through.
	pipe *pipeline.Pipeline

	shards        []userShard
	shardMask     uint32
	lockOps       atomic.Int64
	lockContended atomic.Int64

	// barrier fences the durable write paths against the checkpointer:
	// every mutating entry point applies its state change AND emits its
	// WAL event inside one read-locked stripe section (the stripe is the
	// user's shard index, so writers for different users share no
	// barrier state), and the checkpointer quiesces all stripes to
	// snapshot + rotate the WAL at a point where state and log agree
	// exactly (no applied-but-unlogged or logged-but-unapplied mutation
	// can straddle the boundary). Pure read paths — PlanTrip serving,
	// Recommend without pending injections, cache lookups, /stats —
	// never touch it.
	barrier commitBarrier
	// durHook, when set, receives exactly one durable event per
	// completed mutation, tagged with the barrier stripe the writer
	// held (which the WAL reuses as its staging stripe). Set via
	// SetMutationHook before serving.
	durHook func(stripe uint32, e durable.Event) error
	// ingestMu pins WAL order to apply order for the (userless) ingest
	// path the way the shard locks do for per-user mutations.
	ingestMu sync.Mutex
	// emitErrs counts hook failures on the two paths whose signatures
	// cannot propagate them (consume, feedback-compact); /stats surfaces
	// it via DurabilityStats.
	emitErrs atomic.Int64
}

// FNV-1a, inlined: shardFor sits on the request fast path and must not
// allocate (hash/fnv costs a hasher plus a byte slice per call) — same
// idiom as internal/plancache.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// shardIndexFor returns the stripe index of the user's state — shared
// by the per-user shard locks, the commit-barrier stripes and the WAL
// staging stripes, so one hash places a writer everywhere.
func (s *System) shardIndexFor(userID string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(userID); i++ {
		h ^= uint32(userID[i])
		h *= fnvPrime32
	}
	return h & s.shardMask
}

// shardFor returns the stripe holding the user's state.
func (s *System) shardFor(userID string) *userShard {
	return &s.shards[s.shardIndexFor(userID)]
}

// ingestStripe is the barrier/WAL stripe of the userless content-ingest
// path (ingest order is pinned by ingestMu; the stripe only has to be
// deterministic so the checkpoint quiesce excludes it).
const ingestStripe = 0

// lockShard / rlockShard acquire the shard mutex, counting acquisitions
// that found it already held.
func (s *System) lockShard(sh *userShard) {
	s.lockOps.Add(1)
	if !sh.mu.TryLock() {
		s.lockContended.Add(1)
		sh.mu.Lock()
	}
}

func (s *System) rlockShard(sh *userShard) {
	s.lockOps.Add(1)
	if !sh.mu.TryRLock() {
		s.lockContended.Add(1)
		sh.mu.RLock()
	}
}

// LockStats snapshots the user-shard lock and commit-barrier counters
// (reported on /stats).
func (s *System) LockStats() LockStats {
	return LockStats{
		Shards:    len(s.shards),
		Ops:       s.lockOps.Load(),
		Contended: s.lockContended.Load(),
		Barrier:   s.barrier.stats(),
	}
}

// New builds and wires a System.
func New(cfg Config) (*System, error) {
	if len(cfg.TrainingDocs) == 0 {
		return nil, fmt.Errorf("pphcr: Config.TrainingDocs required to train the classifier")
	}
	if cfg.ContextWeight == 0 {
		cfg.ContextWeight = 0.4
	}
	if cfg.ASRWordErrorRate == 0 {
		cfg.ASRWordErrorRate = 0.15
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.CandidateWindow <= 0 {
		cfg.CandidateWindow = 72 * time.Hour
	}
	if cfg.UserShards <= 0 {
		cfg.UserShards = DefaultUserShards
	}
	nShards := 1
	for nShards < cfg.UserShards {
		nShards <<= 1
	}
	var nb textclass.NaiveBayes
	if err := nb.Train(cfg.TrainingDocs); err != nil {
		return nil, fmt.Errorf("pphcr: training classifier: %w", err)
	}
	recognizer, err := asr.New(cfg.ASRWordErrorRate, asr.DefaultErrorProfile(), cfg.Vocabulary, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("pphcr: building recognizer: %w", err)
	}
	scorer := recommend.NewScorer(cfg.ContextWeight)
	repo := content.NewRepository()
	s := &System{
		Directory: radiodns.NewDirectory(),
		Repo:      repo,
		Profiles:  profile.NewStore(),
		Feedback:  feedback.NewStore(),
		Tracker:   tracking.NewTracker(),
		Broker:    broker.New(),
		Scorer:    scorer,
		Planner:   core.NewPlanner(scorer),
		PlanCache: plancache.New(plancache.Config{Shards: cfg.PlanCacheShards, TTL: cfg.PlanTTL}),
		ingest: &content.Pipeline{
			Recognizer: recognizer,
			Classifier: &nb,
			Repo:       repo,
		},
		candidateWindow: cfg.CandidateWindow,
		shards:          make([]userShard, nShards),
		shardMask:       uint32(nShards - 1),
	}
	s.barrier.stripes = make([]barrierStripe, nShards)
	for i := range s.shards {
		s.shards[i].mobility = make(map[string]*tracking.CompactModel)
		s.shards[i].compactN = make(map[string]int)
		s.shards[i].injected = make(map[string][]string)
		s.shards[i].lastPlans = make(map[string]*TripPlan)
	}
	deps := pipeline.Deps{
		Mobility:         s.MobilityModel,
		Preferences:      s.Preferences,
		AppendCandidates: repo.AppendPublishedSince,
		CandidateWindow:  cfg.CandidateWindow,
		Cache:            s.PlanCache,
		Planner:          s.Planner,
		Scorer:           scorer,
	}
	if cfg.ANNCandidates {
		s.annIndex = ann.New(ann.Config{
			Seed:       cfg.Seed,
			ProbeEvery: cfg.ANNProbeEvery,
		})
		// Attached before any ingest or restore, so every item that ever
		// enters the repository — live, snapshot-restored or WAL-replayed
		// — is embedded and indexed by the same Add path.
		repo.SetVectorIndex(s.annIndex)
		deps.ANN = s.annIndex
		deps.ANNRetrieve = cfg.ANNRetrieve
		deps.ANNEf = cfg.ANNEf
		deps.ResolveItem = repo.Get
	}
	s.pipe = pipeline.New(deps)
	return s, nil
}

// ANNIndex returns the embedding index behind the ANN Candidates
// stage, or nil when Config.ANNCandidates is off.
func (s *System) ANNIndex() *ann.Index { return s.annIndex }

// RetrievalStats snapshots the embedding-retrieval path (per-query
// search latency, candidate counters, index size, sampled recall); ok
// is false when ANN retrieval is disabled.
func (s *System) RetrievalStats() (pipeline.RetrievalStats, ann.Stats, bool) {
	if s.annIndex == nil {
		return pipeline.RetrievalStats{}, ann.Stats{}, false
	}
	return s.pipe.Retrieval(), s.annIndex.Snapshot(), true
}

// PipelineStats snapshots the staged pipeline's per-stage latency and
// count metrics (reported on /stats and by the load generator).
func (s *System) PipelineStats() pipeline.Stats {
	return s.pipe.Stats()
}

// Pipeline returns the staged planning pipeline. Stage fields may be
// replaced before first use to substitute custom operators (tests use
// this to inject slow stages).
func (s *System) Pipeline() *pipeline.Pipeline { return s.pipe }

// BarrierAcquireHistogram is the contended-acquire wait distribution of
// the commit barrier, for metrics-endpoint registration.
func (s *System) BarrierAcquireHistogram() *obs.Histogram { return &s.barrier.acquireHist }

// BarrierQuiesceHistogram is the quiesce-entry (writer drain) latency
// distribution of the commit barrier, for metrics-endpoint
// registration.
func (s *System) BarrierQuiesceHistogram() *obs.Histogram { return &s.barrier.quiesceHist }

// SetMutationHook installs the durability hook: from now on every
// write-path entry point hands exactly one durable event describing its
// completed mutation to fn — tagged with the writer's barrier stripe —
// inside the same critical section that applied it. OpenDurability
// installs the WAL's striped appender here after recovery; tests may
// install capture hooks. Passing nil detaches.
//
// A hook error is returned to the entry point's caller (the mutation is
// already applied in memory — the next checkpoint still persists it —
// but the caller learns its write is not yet logged).
func (s *System) SetMutationHook(fn func(stripe uint32, e durable.Event) error) {
	// Quiescing every barrier stripe orders the swap against all
	// writers: each reads the hook under its stripe's read lock.
	s.barrier.quiesce()
	s.durHook = fn
	s.barrier.release()
}

// emit marshals payload and hands the typed event to the mutation hook.
// Callers must hold the read side of barrier stripe `stripe`.
func (s *System) emit(stripe uint32, t durable.Type, payload interface{}) error {
	if s.durHook == nil {
		return nil
	}
	b, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("pphcr: encoding %s event: %w", t, err)
	}
	if err := s.durHook(stripe, durable.Event{Type: t, Payload: b}); err != nil {
		return fmt.Errorf("pphcr: logging %s event: %w", t, err)
	}
	return nil
}

// checkpointBarrier runs fn with every durable write path excluded, so
// fn observes a state that exactly matches a WAL position.
func (s *System) checkpointBarrier(fn func()) {
	s.barrier.quiesce()
	defer s.barrier.release()
	fn()
}

// RegisterUser stores a listener profile. Apply + emit run under the
// user's shard lock so two racing registrations of the same user reach
// the WAL in their apply order.
func (s *System) RegisterUser(p profile.Profile) error {
	idx := s.shardIndexFor(p.UserID)
	s.barrier.rlock(idx)
	defer s.barrier.runlock(idx)
	sh := &s.shards[idx]
	s.lockShard(sh)
	err := s.Profiles.Put(p)
	if err == nil {
		err = s.emit(idx, durable.TypeRegister, p)
	}
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	s.Broker.Publish("users.registered", []byte(p.UserID))
	return nil
}

// IngestPodcast runs the clip-data-management pipeline on one podcast.
//
// The durable event is emitted *before* the item enters the
// repository, and carries the *classified* item rather than the raw
// podcast: replaying raw audio through the ASR would consume different
// simulated-randomness than the original run, and logging after the
// add would let a concurrent Inject (which can only see the item once
// added) reach the WAL ahead of the item's own creation, making the
// log unreplayable.
func (s *System) IngestPodcast(raw content.RawPodcast) (*content.Item, error) {
	// Process (ASR + classification, the slowest operation in the
	// system) mutates nothing and runs outside every lock: holding the
	// durability read lock across it would park a pending checkpoint
	// barrier — and with it every other write path — behind the
	// slowest in-flight ingest.
	it, err := s.ingest.Process(raw)
	if err != nil {
		return nil, err
	}
	s.barrier.rlock(ingestStripe)
	defer s.barrier.runlock(ingestStripe)
	// emit + Add under one mutex, mirroring the per-user shard locking
	// of the other write paths: two concurrent ingests of the same ID
	// must reach the WAL in their apply order, or replay would keep the
	// loser's item instead of the winner's.
	s.ingestMu.Lock()
	err = s.emit(ingestStripe, durable.TypeIngest, it)
	added := false
	if err == nil || errors.Is(err, durable.ErrDeferredSync) {
		// ErrDeferredSync means an *earlier* fsync failed but THIS
		// record is in the log — the item must still be added, or
		// replay would resurrect an item the live system never served.
		// On Add failure the WAL holds an event whose apply failed
		// (duplicate ID, invalid duration); restoreItem skips it on
		// replay the same way, so recovered state still matches.
		if aerr := s.ingest.Repo.Add(it); aerr != nil {
			err = aerr
		} else {
			added = true
		}
	}
	s.ingestMu.Unlock()
	if added {
		// New content changes every user's candidate set: mark all warm
		// plans stale (O(1) epoch bump) whether or not the append
		// reported a durability problem; the precompute scheduler
		// re-warms them.
		s.PlanCache.InvalidateAll()
	}
	if err != nil {
		return nil, err
	}
	s.Broker.Publish("content.ingested."+it.TopCategory(), []byte(it.ID))
	return it, nil
}

// restoreItem inserts an already-classified item — the WAL replay path
// of IngestPodcast (the event payload is the classified item, so the
// ingestion pipeline is not re-run). An Add failure is skipped, not
// fatal: the event was logged before the live Add ran, so a record
// whose apply failed live (duplicate ID, invalid duration) fails here
// identically — skipping reproduces the live outcome.
func (s *System) restoreItem(it *content.Item) error {
	s.barrier.rlock(ingestStripe)
	defer s.barrier.runlock(ingestStripe)
	if err := s.Repo.Add(it); err != nil {
		return nil
	}
	s.PlanCache.InvalidateAll()
	s.Broker.Publish("content.ingested."+it.TopCategory(), []byte(it.ID))
	return nil
}

// RecordFix ingests one GPS sample for a user.
//
// Apply and WAL emit happen under the user's shard lock: two concurrent
// same-user mutations must reach the log in their apply order, or
// replay would reconstruct a state the live system never had (an
// out-of-order fix pair would even fail recovery outright).
func (s *System) RecordFix(userID string, fix trajectory.Fix) error {
	return s.recordFix(userID, fix, nil)
}

// RecordFixTraced is RecordFix with a span recorder attached: the
// barrier wait and the WAL append (which under SyncAlways includes the
// group-commit ticket wait) become spans, so a slow fix in the trace
// ring shows where its time went.
func (s *System) RecordFixTraced(userID string, fix trajectory.Fix, tr *obs.Trace) error {
	return s.recordFix(userID, fix, tr)
}

func (s *System) recordFix(userID string, fix trajectory.Fix, tr *obs.Trace) error {
	idx := s.shardIndexFor(userID)
	off := tr.StartSpan()
	s.barrier.rlock(idx)
	tr.EndSpan("barrier_wait", off)
	defer s.barrier.runlock(idx)
	sh := &s.shards[idx]
	s.lockShard(sh)
	err := s.Tracker.Record(userID, fix)
	if err == nil {
		off = tr.StartSpan()
		err = s.emit(idx, durable.TypeFix, fixEvent{User: userID, Fix: fix})
		tr.EndSpan("wal_append", off)
	}
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	s.Broker.Publish("tracking.gps", []byte(userID))
	return nil
}

// AddFeedback stores one feedback event. Apply + emit run under the
// user's shard lock so the WAL preserves per-user apply order (see
// RecordFix).
func (s *System) AddFeedback(e feedback.Event) error {
	return s.addFeedback(e, nil)
}

// AddFeedbackTraced is AddFeedback with a span recorder attached (see
// RecordFixTraced).
func (s *System) AddFeedbackTraced(e feedback.Event, tr *obs.Trace) error {
	return s.addFeedback(e, tr)
}

func (s *System) addFeedback(e feedback.Event, tr *obs.Trace) error {
	idx := s.shardIndexFor(e.UserID)
	off := tr.StartSpan()
	s.barrier.rlock(idx)
	tr.EndSpan("barrier_wait", off)
	defer s.barrier.runlock(idx)
	sh := &s.shards[idx]
	s.lockShard(sh)
	err := s.Feedback.Append(e)
	applied := err == nil
	if applied {
		off = tr.StartSpan()
		err = s.emit(idx, durableTypeForKind(e.Kind), e)
		tr.EndSpan("wal_append", off)
	}
	sh.mu.Unlock()
	if applied {
		// The event is in the store whether or not the WAL append
		// succeeded, so the user's warm plans no longer reflect the
		// ranking inputs and must be invalidated either way.
		s.PlanCache.InvalidateUser(e.UserID)
	}
	if err != nil {
		return err
	}
	s.Broker.Publish("feedback."+e.Kind.String(), []byte(e.UserID))
	return nil
}

// CompactTracking runs the periodic tracking compaction for a user and
// caches the resulting mobility model.
func (s *System) CompactTracking(userID string) (*tracking.CompactModel, error) {
	idx := s.shardIndexFor(userID)
	s.barrier.rlock(idx)
	defer s.barrier.runlock(idx)
	return s.compactTracking(userID, -1)
}

// compactTracking compacts the user's first n fixes (the live count
// when n < 0) and installs the model. The count is pinned, the model
// installed and the WAL event emitted under the user's shard lock, and
// the event carries the pinned count, so replay re-derives the model
// from exactly the same trace prefix no matter how concurrent fixes
// interleaved with the compaction. Callers hold the user's barrier
// stripe (read side).
func (s *System) compactTracking(userID string, n int) (*tracking.CompactModel, error) {
	idx := s.shardIndexFor(userID)
	sh := &s.shards[idx]
	s.lockShard(sh)
	if n < 0 {
		n = s.Tracker.FixCount(userID)
	}
	cm, err := s.Tracker.CompactN(userID, tracking.DefaultCompactParams(), n)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	sh.mobility[userID] = cm
	sh.compactN[userID] = n
	//pphcr:allow mutateemit callers hold the user's barrier stripe (read side), per this function's contract
	err = s.emit(idx, durable.TypeCompact, compactEvent{User: userID, N: n})
	sh.mu.Unlock()
	// The model is installed whether or not the WAL append succeeded,
	// and re-compaction renumbers the user's staying points — cached
	// keys (which embed PlaceIDs) must not survive it, emit error or
	// not.
	s.PlanCache.InvalidateUser(userID)
	if err != nil {
		return nil, err
	}
	s.Broker.Publish("tracking.compacted", []byte(userID))
	return cm, nil
}

// MobilityModel returns the cached compact model for a user.
func (s *System) MobilityModel(userID string) (*tracking.CompactModel, bool) {
	sh := s.shardFor(userID)
	s.rlockShard(sh)
	defer sh.mu.RUnlock()
	cm, ok := sh.mobility[userID]
	return cm, ok
}

// MobilityUsers lists the users with a compacted mobility model — the
// population the precompute scheduler can warm plans for.
func (s *System) MobilityUsers() []string {
	return s.AppendMobilityUsers(nil)
}

// AppendMobilityUsers appends the mobility-model population to dst
// (sorted), reusing its capacity — the allocation-free variant for
// callers that poll the population repeatedly (the precompute
// scheduler, the warmer).
func (s *System) AppendMobilityUsers(dst []string) []string {
	for i := range s.shards {
		sh := &s.shards[i]
		s.rlockShard(sh)
		for u := range sh.mobility {
			dst = append(dst, u)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(dst)
	return dst
}

// Preferences returns the user's current category preference vector:
// time-decayed feedback blended with the profile's declared interests.
// The read is served from the feedback store's incremental index in
// O(categories) — independent of how much history the user has.
func (s *System) Preferences(userID string, now time.Time) map[string]float64 {
	params := feedback.DefaultPreferenceParams()
	if p, err := s.Profiles.Get(userID); err == nil {
		params.Seed = p.SeedPreferences()
	}
	return s.Feedback.Preferences(userID, now, params)
}

// CompactFeedback folds the user's feedback events older than horizon
// into their baseline vector and truncates the log — the feedback
// analogue of CompactTracking, keeping per-user memory bounded.
// Preferences are unaffected (the incremental index already contains
// every event), so warm plans stay valid and no cache invalidation is
// needed. It returns the number of events folded away.
func (s *System) CompactFeedback(userID string, now time.Time, horizon time.Duration) int {
	idx := s.shardIndexFor(userID)
	s.barrier.rlock(idx)
	defer s.barrier.runlock(idx)
	sh := &s.shards[idx]
	// The shard lock pins the WAL position of the fold relative to the
	// user's racing AddFeedback emits (both apply to the feedback store
	// and must replay in apply order).
	s.lockShard(sh)
	n := s.Feedback.Compact(userID, now, horizon)
	var emitErr error
	if n > 0 {
		// The fold is deterministic in (user, now, horizon), so the WAL
		// event records the arguments and replay re-runs the fold. The
		// signature cannot propagate an emit failure, so it is counted
		// (surfaced on /stats) — and the WAL's sticky error resurfaces
		// on the next mutation anyway.
		emitErr = s.emit(idx, durable.TypeFeedbackCompact, feedbackCompactEvent{User: userID, At: now, Horizon: horizon})
	}
	sh.mu.Unlock()
	if n > 0 {
		if emitErr != nil {
			s.emitErrs.Add(1)
		}
		// Deliberately NOT under "feedback.#": compaction does not change
		// the preference vector, so it must not trigger plan re-warming.
		s.Broker.Publish("prefs.compacted", []byte(userID))
	}
	return n
}

// Candidates returns the current candidate clip set: everything published
// within the candidate window before now.
func (s *System) Candidates(now time.Time) []*content.Item {
	return s.Repo.AppendPublishedSince(nil, now.Add(-s.candidateWindow))
}

// Recommend ranks the current candidates for the user in the given
// context, through the pipeline's Candidates → Rank stages. Editorially
// injected items (Fig 6) are pinned to the top with full relevance, then
// removed from the injection list (inject-once semantics).
func (s *System) Recommend(userID string, ctx recommend.Context, k int) []recommend.Scored {
	t := &pipeline.Task{Mode: pipeline.ModeRank, User: userID, Now: ctx.Now, Ctx: ctx, K: k}
	s.pipe.Run(t)
	ranked := t.Ranked

	pinned, seen := s.consumeInjections(userID)
	if len(pinned) == 0 {
		return ranked
	}
	out := pinned
	for _, sc := range ranked {
		if !seen[sc.Item.ID] {
			out = append(out, sc)
		}
	}
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// consumeInjections pops the user's pending editorial injections
// (inject-once semantics) and resolves them into pinned entries with
// full relevance, deduplicated; seen holds the resolved IDs so callers
// can drop them from the organic ranking. Shared by Recommend and the
// skip replacement path so the pinning semantics cannot drift.
//
// The overwhelmingly common case — no pending injection — is a pure
// read and must not touch the commit barrier: Recommend and the skip
// paths sit on the request hot path, and the PR 4 regression came
// precisely from reads funneling through the global durability lock.
// Only when the peek finds queued items does the call upgrade to a
// barrier-fenced mutation (lock order: barrier stripe before shard
// lock, same as every write path — hence the re-lock dance).
func (s *System) consumeInjections(userID string) (pinned []recommend.Scored, seen map[string]bool) {
	idx := s.shardIndexFor(userID)
	sh := &s.shards[idx]
	s.rlockShard(sh)
	empty := len(sh.injected[userID]) == 0
	sh.mu.RUnlock()
	if empty {
		return nil, nil
	}

	s.barrier.rlock(idx)
	s.lockShard(sh)
	pinnedIDs := sh.injected[userID]
	delete(sh.injected, userID)
	if len(pinnedIDs) > 0 {
		// Consumption mutates durable state (inject-once semantics must
		// survive a crash, or recovered users see duplicate injections).
		// Emitted under the shard lock so a racing Inject for the same
		// user cannot land in the WAL on the wrong side of this consume;
		// the signature cannot propagate a failure, so it is counted.
		if err := s.emit(idx, durable.TypeConsume, consumeEvent{User: userID}); err != nil {
			s.emitErrs.Add(1)
		}
	}
	sh.mu.Unlock()
	s.barrier.runlock(idx)
	if len(pinnedIDs) == 0 {
		return nil, nil
	}
	seen = make(map[string]bool, len(pinnedIDs))
	for _, id := range pinnedIDs {
		if it, ok := s.Repo.Get(id); ok && !seen[id] {
			pinned = append(pinned, recommend.Scored{Item: it, Content: 1, Context: 1, Compound: 1})
			seen[id] = true
		}
	}
	return pinned, seen
}

// Inject queues an editorial recommendation for a user (the control
// dashboard's "inject recommended audio content to specific users",
// §2 and Fig 6).
func (s *System) Inject(userID, itemID string) error {
	idx := s.shardIndexFor(userID)
	s.barrier.rlock(idx)
	defer s.barrier.runlock(idx)
	if _, ok := s.Repo.Get(itemID); !ok {
		return fmt.Errorf("pphcr: cannot inject unknown item %q", itemID)
	}
	sh := &s.shards[idx]
	s.lockShard(sh)
	sh.injected[userID] = append(sh.injected[userID], itemID)
	err := s.emit(idx, durable.TypeInject, injectEvent{User: userID, Item: itemID})
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	s.Broker.Publish("editorial.injected", []byte(userID+":"+itemID))
	return nil
}

// PendingInjections returns the queued editorial items for a user.
func (s *System) PendingInjections(userID string) []string {
	sh := s.shardFor(userID)
	s.rlockShard(sh)
	defer sh.mu.RUnlock()
	return append([]string(nil), sh.injected[userID]...)
}

// TripPlan is the output of the full proactive pipeline for a trip in
// progress.
type TripPlan struct {
	// Prediction is the mobility forecast (destination, ΔT, route).
	Prediction predict.Prediction
	// Proactive reports the phase-1 decision; Reason explains a negative.
	Proactive bool
	Reason    string
	// Plan is the scheduled recommendation list (empty when !Proactive).
	Plan core.Plan
	// Context is the recommendation context derived from the prediction.
	Context recommend.Context
	// Source records how the plan was produced: "cold" when the full
	// pipeline ran for this request, "warm" when a precomputed plan was
	// served from the cache.
	Source string
}

// Plan sources.
const (
	PlanSourceCold = pipeline.SourceCold
	PlanSourceWarm = pipeline.SourceWarm
)

// CachedPlan implements pipeline.CachedPlan: the scheduled plan plus the
// logical instant it was computed for, which is what the Candidates
// stage needs to judge a warm entry's fit and freshness.
func (tp *TripPlan) CachedPlan() (core.Plan, time.Time) {
	return tp.Plan, tp.Context.Now
}

// finishPlanTask converts a completed pipeline task into the public
// TripPlan, stores it in the plan cache when the Allocate stage marked
// it cacheable, remembers it as the user's last plan and publishes the
// planning event. One conversion serves the live, warm and batch entry
// points.
func (s *System) finishPlanTask(t *pipeline.Task) (*TripPlan, error) {
	if t.Err != nil {
		return nil, t.Err
	}
	if !t.Recognized {
		return &TripPlan{Proactive: false, Reason: t.Reason}, nil
	}
	tp := &TripPlan{
		Prediction: t.Prediction,
		Context:    t.Ctx,
		Proactive:  t.Proactive,
		Reason:     t.Reason,
		Plan:       t.Plan,
		Source:     t.Source,
	}
	if t.Cacheable {
		// The version was captured before ranking inputs were sampled, so
		// a concurrent invalidation (global or per-user) marks this entry
		// stale rather than letting it masquerade as fresh.
		s.PlanCache.PutVersioned(t.CacheKey, tp, t.CacheVer)
	}
	if t.Mode == pipeline.ModeLive {
		s.rememberPlan(t.User, tp)
		if t.Proactive {
			s.Broker.Publish("recommendations.planned", []byte(t.User))
		}
	}
	return tp, nil
}

// PlanTrip runs the end-to-end proactive flow for a user who started
// driving: predict the trip from the partial trace and the compacted
// mobility model, decide whether to recommend, and if so fill ΔT with
// the relevance-maximizing clip schedule. The optional distraction
// timeline gates transitions; pass nil when no road metadata is known.
//
// The flow is the pipeline's staged composition: Predict → Gate (phase 1
// always runs live — a warm plan must never override a live decline) →
// Candidates (which serves a warm cache entry when it fits) → Rank →
// Allocate.
func (s *System) PlanTrip(userID string, partial trajectory.Trace, now time.Time, tl *distraction.Timeline) (*TripPlan, error) {
	return s.planTrip(userID, partial, now, tl, nil)
}

// PlanTripTraced is PlanTrip with a span recorder attached: each
// pipeline stage, the warm-cache outcome and the finish step (cache
// store + last-plan bookkeeping, which blocks on the user's shard lock
// during a checkpoint snapshot) become spans in the trace.
func (s *System) PlanTripTraced(userID string, partial trajectory.Trace, now time.Time, tl *distraction.Timeline, tr *obs.Trace) (*TripPlan, error) {
	return s.planTrip(userID, partial, now, tl, tr)
}

func (s *System) planTrip(userID string, partial trajectory.Trace, now time.Time, tl *distraction.Timeline, tr *obs.Trace) (*TripPlan, error) {
	t := &pipeline.Task{
		Mode:     pipeline.ModeLive,
		User:     userID,
		Now:      now,
		Partial:  partial,
		Timeline: tl,
		Trace:    tr,
	}
	s.pipe.Run(t)
	off := tr.StartSpan()
	tp, err := s.finishPlanTask(t)
	tr.EndSpan("finish", off)
	if tp != nil {
		tr.SetSource(tp.Source)
	}
	return tp, err
}

// TripRequest is one PlanTripBatch member.
type TripRequest struct {
	UserID   string
	Partial  trajectory.Trace
	Now      time.Time
	Timeline *distraction.Timeline
}

// TripResult pairs one batch member's plan with its error.
type TripResult struct {
	Plan *TripPlan
	Err  error
}

// PlanTripBatch runs many live planning requests through one pipeline
// batch: the candidate window is acquired and featurized once per
// distinct planning instant and each user's decayed preference vector is
// read once, instead of once per request. Results are positional and
// per-request errors do not fail their neighbors.
func (s *System) PlanTripBatch(reqs []TripRequest) []TripResult {
	tasks := make([]*pipeline.Task, len(reqs))
	for i, r := range reqs {
		tasks[i] = &pipeline.Task{
			Mode:     pipeline.ModeLive,
			User:     r.UserID,
			Now:      r.Now,
			Partial:  r.Partial,
			Timeline: r.Timeline,
		}
	}
	s.pipe.RunBatch(tasks)
	out := make([]TripResult, len(reqs))
	for i, t := range tasks {
		out[i].Plan, out[i].Err = s.finishPlanTask(t)
	}
	return out
}

// WarmPlan precomputes and caches the proactive plan for an anticipated
// trip: user leaving `from` for `dest` around time `at`, with `prob` as
// the Markov prior standing in for the live trip confidence. The context
// is reconstructed from the mobility model (expected route, median travel
// time, implied speed), which is exactly the information PlanTrip would
// derive at trip start — both run the same pipeline stages. The plan is
// cached under (user, dest, BucketOf(at)) when phase 1 approves and at
// least one item is scheduled; the returned TripPlan reports the phase-1
// decision either way.
func (s *System) WarmPlan(userID string, from, dest predict.PlaceID, prob float64, at time.Time) (*TripPlan, error) {
	t := &pipeline.Task{
		Mode: pipeline.ModeWarm,
		User: userID,
		Now:  at,
		From: from,
		Dest: dest,
		Prob: prob,
	}
	s.pipe.Run(t)
	return s.finishPlanTask(t)
}

// WarmRequest is one WarmBatch member: an anticipated trip to warm.
type WarmRequest struct {
	UserID     string
	From, Dest predict.PlaceID
	Prob       float64
	At         time.Time
}

// WarmBatch precomputes plans for many anticipated trips through one
// pipeline batch. This is the precompute scheduler's execution path: a
// warm sweep over N users shares one candidate acquisition +
// featurization per time bucket and one preference read per user, which
// is what makes population-scale warming affordable (BenchmarkPlanBatch
// measures the per-plan gap against sequential WarmPlan).
func (s *System) WarmBatch(reqs []WarmRequest) []TripResult {
	tasks := make([]*pipeline.Task, len(reqs))
	for i, r := range reqs {
		tasks[i] = &pipeline.Task{
			Mode: pipeline.ModeWarm,
			User: r.UserID,
			Now:  r.At,
			From: r.From,
			Dest: r.Dest,
			Prob: r.Prob,
		}
	}
	s.pipe.RunBatch(tasks)
	out := make([]TripResult, len(reqs))
	for i, t := range tasks {
		out[i].Plan, out[i].Err = s.finishPlanTask(t)
	}
	return out
}

func (s *System) rememberPlan(userID string, tp *TripPlan) {
	sh := s.shardFor(userID)
	s.lockShard(sh)
	sh.lastPlans[userID] = tp
	sh.mu.Unlock()
}

// LastPlan returns the most recent trip plan computed for the user —
// what the control dashboard shows as "the details of the recommendation
// process" (§2.2).
func (s *System) LastPlan(userID string) (*TripPlan, bool) {
	sh := s.shardFor(userID)
	s.rlockShard(sh)
	defer sh.mu.RUnlock()
	tp, ok := sh.lastPlans[userID]
	return tp, ok
}

// ErrNoAlternative is returned by SkipLive when no suitable replacement
// content exists; the client app stays on (or zaps) linear radio.
var ErrNoAlternative = errors.New("pphcr: no alternative content available")

// SkipLive handles the manual-skip task (§1.3, §2.1.1 "Greg"): the
// listener skips the on-air program; the system records the implicit
// negative feedback for that program and returns the most relevant
// replacement clip the listener has not already skipped. The app then
// seamlessly replaces the live audio with the returned clip.
func (s *System) SkipLive(userID, serviceID string, ctx recommend.Context) (recommend.Scored, error) {
	return s.SkipLiveTraced(userID, serviceID, ctx, nil)
}

// SkipLiveTraced is SkipLive with a span recorder attached: the
// feedback write (barrier wait + WAL append) and the replacement
// ranking stages become spans.
func (s *System) SkipLiveTraced(userID, serviceID string, ctx recommend.Context, tr *obs.Trace) (recommend.Scored, error) {
	if prog, err := s.Directory.ProgramAt(serviceID, ctx.Now); err == nil {
		if err := s.addFeedback(feedback.Event{
			UserID:     userID,
			ItemID:     prog.ID,
			Kind:       feedback.Skip,
			At:         ctx.Now,
			Categories: prog.Categories,
		}, tr); err != nil {
			return recommend.Scored{}, err
		}
	}
	return s.skipReplacement(userID, ctx, tr)
}

// SkipClip handles a skip of an already-playing recommended clip: the
// negative feedback is recorded for the clip itself and the next
// not-yet-skipped recommendation is returned.
func (s *System) SkipClip(userID, itemID string, ctx recommend.Context) (recommend.Scored, error) {
	return s.SkipClipTraced(userID, itemID, ctx, nil)
}

// SkipClipTraced is SkipClip with a span recorder attached (see
// SkipLiveTraced).
func (s *System) SkipClipTraced(userID, itemID string, ctx recommend.Context, tr *obs.Trace) (recommend.Scored, error) {
	if it, ok := s.Repo.Get(itemID); ok {
		if err := s.addFeedback(feedback.Event{
			UserID:     userID,
			ItemID:     it.ID,
			Kind:       feedback.Skip,
			At:         ctx.Now,
			Categories: it.Categories,
		}, tr); err != nil {
			return recommend.Scored{}, err
		}
	}
	return s.skipReplacement(userID, ctx, tr)
}

// skipReplacement picks the single best not-yet-skipped clip for the
// user. Pending editorial injections keep their precedence (and their
// inject-once semantics), then the pipeline ranks with k=1 and the
// skipped set excluded in-stage — the Rank stage's bounded top-k heap
// selects the one replacement without ranking (or sorting) the whole
// catalog the way the old Recommend(user, ctx, 0) scan did
// (BenchmarkSkipReplacement measures the gap).
func (s *System) skipReplacement(userID string, ctx recommend.Context, tr *obs.Trace) (recommend.Scored, error) {
	skipped := s.Feedback.SkippedItems(userID)

	exclude := skipped
	if pinned, seen := s.consumeInjections(userID); len(pinned) > 0 {
		// Preserve Recommend's merge semantics: the first pinned,
		// unskipped item wins outright; pinned-but-skipped items must not
		// reappear from the organic ranking.
		for _, sc := range pinned {
			if !skipped[sc.Item.ID] {
				return sc, nil
			}
		}
		exclude = seen
		for id := range skipped {
			exclude[id] = true
		}
	}

	t := &pipeline.Task{
		Mode:    pipeline.ModeRank,
		User:    userID,
		Now:     ctx.Now,
		Ctx:     ctx,
		K:       1,
		Exclude: exclude,
		Trace:   tr,
	}
	s.pipe.Run(t)
	if len(t.Ranked) == 0 {
		return recommend.Scored{}, ErrNoAlternative
	}
	return t.Ranked[0], nil
}
