// Benchmarks: one per reproduced figure/experiment (see DESIGN.md §4).
// Each runs the corresponding experiment end to end in Quick mode, so
// `go test -bench=.` regenerates every artifact and reports its cost.
package pphcr_test

import (
	"io"
	"testing"

	"pphcr/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Out: io.Discard, Seed: 2017, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, cfg); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkFig1Replacement(b *testing.B)      { benchExperiment(b, "F1") }
func BenchmarkFig2TripAllocation(b *testing.B)   { benchExperiment(b, "F2") }
func BenchmarkFig3Pipeline(b *testing.B)         { benchExperiment(b, "F3") }
func BenchmarkFig4Timeline(b *testing.B)         { benchExperiment(b, "F4") }
func BenchmarkFig5TrajectoryRender(b *testing.B) { benchExperiment(b, "F5") }
func BenchmarkFig6Injection(b *testing.B)        { benchExperiment(b, "F6") }
func BenchmarkQ1RankingQuality(b *testing.B)     { benchExperiment(b, "Q1") }
func BenchmarkQ2ListeningSim(b *testing.B)       { benchExperiment(b, "Q2") }
func BenchmarkQ3Prediction(b *testing.B)         { benchExperiment(b, "Q3") }
func BenchmarkQ4Classifier(b *testing.B)         { benchExperiment(b, "Q4") }
func BenchmarkQ5Bandwidth(b *testing.B)          { benchExperiment(b, "Q5") }
func BenchmarkQ6Compaction(b *testing.B)         { benchExperiment(b, "Q6") }
func BenchmarkA1WeightAblation(b *testing.B)     { benchExperiment(b, "A1") }
func BenchmarkA2Distraction(b *testing.B)        { benchExperiment(b, "A2") }
func BenchmarkA3Ensemble(b *testing.B)           { benchExperiment(b, "A3") }
func BenchmarkA4GeoRelevance(b *testing.B)       { benchExperiment(b, "A4") }
func BenchmarkA5RicherContext(b *testing.B)      { benchExperiment(b, "A5") }
