// Benchmarks: one per reproduced figure/experiment (see DESIGN.md §4).
// Each runs the corresponding experiment end to end in Quick mode, so
// `go test -bench=.` regenerates every artifact and reports its cost.
package pphcr_test

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pphcr"
	"pphcr/internal/experiments"
	"pphcr/internal/feedback"
	"pphcr/internal/plancache"
	"pphcr/internal/predict"
	"pphcr/internal/synth"
	"pphcr/internal/trajectory"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Out: io.Discard, Seed: 2017, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, cfg); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkFig1Replacement(b *testing.B)      { benchExperiment(b, "F1") }
func BenchmarkFig2TripAllocation(b *testing.B)   { benchExperiment(b, "F2") }
func BenchmarkFig3Pipeline(b *testing.B)         { benchExperiment(b, "F3") }
func BenchmarkFig4Timeline(b *testing.B)         { benchExperiment(b, "F4") }
func BenchmarkFig5TrajectoryRender(b *testing.B) { benchExperiment(b, "F5") }
func BenchmarkFig6Injection(b *testing.B)        { benchExperiment(b, "F6") }
func BenchmarkQ1RankingQuality(b *testing.B)     { benchExperiment(b, "Q1") }
func BenchmarkQ2ListeningSim(b *testing.B)       { benchExperiment(b, "Q2") }
func BenchmarkQ3Prediction(b *testing.B)         { benchExperiment(b, "Q3") }
func BenchmarkQ4Classifier(b *testing.B)         { benchExperiment(b, "Q4") }
func BenchmarkQ5Bandwidth(b *testing.B)          { benchExperiment(b, "Q5") }
func BenchmarkQ6Compaction(b *testing.B)         { benchExperiment(b, "Q6") }
func BenchmarkA1WeightAblation(b *testing.B)     { benchExperiment(b, "A1") }
func BenchmarkA2Distraction(b *testing.B)        { benchExperiment(b, "A2") }
func BenchmarkA3Ensemble(b *testing.B)           { benchExperiment(b, "A3") }
func BenchmarkA4GeoRelevance(b *testing.B)       { benchExperiment(b, "A4") }
func BenchmarkA5RicherContext(b *testing.B)      { benchExperiment(b, "A5") }

// ---- Proactive plan-warming benchmarks -------------------------------
//
// BenchmarkPlanTripCold runs the full predict→rank→allocate pipeline on
// every iteration (the cache is emptied first); BenchmarkPlanTripWarm
// serves the same request from the warm plan cache. The gap between the
// two is the latency the precompute subsystem removes from the request
// path.

type planBenchEnv struct {
	sys     *pphcr.System
	user    string
	partial trajectory.Trace
	now     time.Time
}

var (
	planEnvOnce sync.Once
	planEnv     *planBenchEnv
	planEnvErr  error
)

func getPlanEnv(b *testing.B) *planBenchEnv {
	b.Helper()
	planEnvOnce.Do(func() {
		w, err := synth.GenerateWorld(synth.Params{
			Seed: 21, Days: 5, Users: 2, Stations: 2, PodcastsPerDay: 40,
			TrainingDocsPerCategory: 8,
		})
		if err != nil {
			planEnvErr = err
			return
		}
		sys, err := pphcr.New(pphcr.Config{TrainingDocs: w.Training, Vocabulary: w.FlatVocab})
		if err != nil {
			planEnvErr = err
			return
		}
		persona := w.Personas[0]
		user := persona.Profile.UserID
		if err := sys.RegisterUser(persona.Profile); err != nil {
			planEnvErr = err
			return
		}
		for _, raw := range w.Corpus {
			if _, err := sys.IngestPodcast(raw); err != nil {
				planEnvErr = err
				return
			}
		}
		for d := 0; d < w.Params.Days; d++ {
			day := w.Params.StartDate.AddDate(0, 0, d)
			if wd := day.Weekday(); wd == time.Saturday || wd == time.Sunday {
				continue
			}
			for _, morning := range []bool{true, false} {
				trace, _, err := w.CommuteTrace(persona, day, morning)
				if err != nil {
					planEnvErr = err
					return
				}
				for _, fix := range trace {
					if err := sys.RecordFix(user, fix); err != nil {
						planEnvErr = err
						return
					}
				}
			}
		}
		if _, err := sys.CompactTracking(user); err != nil {
			planEnvErr = err
			return
		}
		day := w.Params.StartDate.AddDate(0, 0, 7)
		full, _, err := w.CommuteTrace(persona, day, true)
		if err != nil {
			planEnvErr = err
			return
		}
		var partial trajectory.Trace
		for _, fix := range full {
			if fix.Time.Sub(full[0].Time) > 3*time.Minute {
				break
			}
			partial = append(partial, fix)
		}
		planEnv = &planBenchEnv{
			sys: sys, user: user,
			partial: partial, now: partial[len(partial)-1].Time,
		}
	})
	if planEnvErr != nil {
		b.Fatal(planEnvErr)
	}
	return planEnv
}

func BenchmarkPlanTripCold(b *testing.B) {
	env := getPlanEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.sys.PlanCache.InvalidateUser(env.user)
		tp, err := env.sys.PlanTrip(env.user, env.partial, env.now, nil)
		if err != nil {
			b.Fatal(err)
		}
		if tp.Source != pphcr.PlanSourceCold {
			b.Fatalf("source = %q", tp.Source)
		}
	}
}

func BenchmarkPlanTripWarm(b *testing.B) {
	env := getPlanEnv(b)
	// Prime the cache, then every iteration is a warm serve.
	if _, err := env.sys.PlanTrip(env.user, env.partial, env.now, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp, err := env.sys.PlanTrip(env.user, env.partial, env.now, nil)
		if err != nil {
			b.Fatal(err)
		}
		if tp.Source != pphcr.PlanSourceWarm {
			b.Fatalf("source = %q", tp.Source)
		}
	}
}

// BenchmarkPlanCacheConcurrent measures the sharded cache itself under
// parallel mixed load (15/16 reads, 1/16 writes across 64 users).
func BenchmarkPlanCacheConcurrent(b *testing.B) {
	c := plancache.New(plancache.Config{Shards: 32, TTL: time.Hour})
	keys := make([]plancache.Key, 0, 64*16)
	for u := 0; u < 64; u++ {
		for d := 0; d < 16; d++ {
			keys = append(keys, plancache.Key{
				User:   fmt.Sprintf("user-%03d", u),
				Dest:   predict.PlaceID(d),
				Bucket: predict.TimeBucket(d % 12),
			})
		}
	}
	for _, k := range keys {
		c.Put(k, &pphcr.TripPlan{})
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := keys[i%len(keys)]
			if i%16 == 0 {
				c.Put(k, &pphcr.TripPlan{})
			} else {
				c.Get(k)
			}
			i++
		}
	})
}

// ---- Sharded per-user state benchmarks --------------------------------
//
// BenchmarkConcurrentUserState hammers the striped per-user state and
// the incremental preference index with a parallel mixed workload across
// 256 users (3/4 preference reads and plan/injection lookups, 1/4
// feedback appends). Under the seed's single global mutex every pair of
// operations serialized; with striping plus the O(categories) index the
// throughput should scale with cores.
func BenchmarkConcurrentUserState(b *testing.B) {
	env := getPlanEnv(b)
	sys := env.sys
	users := make([]string, 256)
	for i := range users {
		users[i] = fmt.Sprintf("bench-user-%03d", i)
	}
	cats := map[string]float64{"food": 0.6, "music": 0.4}
	now := env.now
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(seq.Add(1))
			u := users[i%len(users)]
			switch i % 4 {
			case 0:
				_ = sys.AddFeedback(feedback.Event{
					UserID: u, ItemID: "it", Kind: feedback.ImplicitListen,
					At: now.Add(time.Duration(i) * time.Millisecond), Categories: cats,
				})
			case 1:
				sys.Preferences(u, now.Add(time.Duration(i)*time.Millisecond))
			case 2:
				sys.LastPlan(u)
			default:
				sys.PendingInjections(u)
			}
		}
	})
}
