// Benchmarks: one per reproduced figure/experiment (see DESIGN.md §4).
// Each runs the corresponding experiment end to end in Quick mode, so
// `go test -bench=.` regenerates every artifact and reports its cost.
package pphcr_test

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pphcr"
	"pphcr/internal/experiments"
	"pphcr/internal/feedback"
	"pphcr/internal/obs"
	"pphcr/internal/plancache"
	"pphcr/internal/predict"
	"pphcr/internal/recommend"
	"pphcr/internal/synth"
	"pphcr/internal/trajectory"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Out: io.Discard, Seed: 2017, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, cfg); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkFig1Replacement(b *testing.B)      { benchExperiment(b, "F1") }
func BenchmarkFig2TripAllocation(b *testing.B)   { benchExperiment(b, "F2") }
func BenchmarkFig3Pipeline(b *testing.B)         { benchExperiment(b, "F3") }
func BenchmarkFig4Timeline(b *testing.B)         { benchExperiment(b, "F4") }
func BenchmarkFig5TrajectoryRender(b *testing.B) { benchExperiment(b, "F5") }
func BenchmarkFig6Injection(b *testing.B)        { benchExperiment(b, "F6") }
func BenchmarkQ1RankingQuality(b *testing.B)     { benchExperiment(b, "Q1") }
func BenchmarkQ2ListeningSim(b *testing.B)       { benchExperiment(b, "Q2") }
func BenchmarkQ3Prediction(b *testing.B)         { benchExperiment(b, "Q3") }
func BenchmarkQ4Classifier(b *testing.B)         { benchExperiment(b, "Q4") }
func BenchmarkQ5Bandwidth(b *testing.B)          { benchExperiment(b, "Q5") }
func BenchmarkQ6Compaction(b *testing.B)         { benchExperiment(b, "Q6") }
func BenchmarkA1WeightAblation(b *testing.B)     { benchExperiment(b, "A1") }
func BenchmarkA2Distraction(b *testing.B)        { benchExperiment(b, "A2") }
func BenchmarkA3Ensemble(b *testing.B)           { benchExperiment(b, "A3") }
func BenchmarkA4GeoRelevance(b *testing.B)       { benchExperiment(b, "A4") }
func BenchmarkA5RicherContext(b *testing.B)      { benchExperiment(b, "A5") }

// ---- Proactive plan-warming benchmarks -------------------------------
//
// BenchmarkPlanTripCold runs the full predict→rank→allocate pipeline on
// every iteration (the cache is emptied first); BenchmarkPlanTripWarm
// serves the same request from the warm plan cache. The gap between the
// two is the latency the precompute subsystem removes from the request
// path.

type planBenchEnv struct {
	sys     *pphcr.System
	user    string
	partial trajectory.Trace
	now     time.Time
}

var (
	planEnvOnce sync.Once
	planEnv     *planBenchEnv
	planEnvErr  error
)

func getPlanEnv(b *testing.B) *planBenchEnv {
	b.Helper()
	planEnvOnce.Do(func() {
		w, err := synth.GenerateWorld(synth.Params{
			Seed: 21, Days: 5, Users: 2, Stations: 2, PodcastsPerDay: 40,
			TrainingDocsPerCategory: 8,
		})
		if err != nil {
			planEnvErr = err
			return
		}
		sys, err := pphcr.New(pphcr.Config{TrainingDocs: w.Training, Vocabulary: w.FlatVocab})
		if err != nil {
			planEnvErr = err
			return
		}
		persona := w.Personas[0]
		user := persona.Profile.UserID
		if err := sys.RegisterUser(persona.Profile); err != nil {
			planEnvErr = err
			return
		}
		for _, raw := range w.Corpus {
			if _, err := sys.IngestPodcast(raw); err != nil {
				planEnvErr = err
				return
			}
		}
		for d := 0; d < w.Params.Days; d++ {
			day := w.Params.StartDate.AddDate(0, 0, d)
			if wd := day.Weekday(); wd == time.Saturday || wd == time.Sunday {
				continue
			}
			for _, morning := range []bool{true, false} {
				trace, _, err := w.CommuteTrace(persona, day, morning)
				if err != nil {
					planEnvErr = err
					return
				}
				for _, fix := range trace {
					if err := sys.RecordFix(user, fix); err != nil {
						planEnvErr = err
						return
					}
				}
			}
		}
		if _, err := sys.CompactTracking(user); err != nil {
			planEnvErr = err
			return
		}
		day := w.Params.StartDate.AddDate(0, 0, 7)
		full, _, err := w.CommuteTrace(persona, day, true)
		if err != nil {
			planEnvErr = err
			return
		}
		var partial trajectory.Trace
		for _, fix := range full {
			if fix.Time.Sub(full[0].Time) > 3*time.Minute {
				break
			}
			partial = append(partial, fix)
		}
		planEnv = &planBenchEnv{
			sys: sys, user: user,
			partial: partial, now: partial[len(partial)-1].Time,
		}
	})
	if planEnvErr != nil {
		b.Fatal(planEnvErr)
	}
	return planEnv
}

func BenchmarkPlanTripCold(b *testing.B) {
	env := getPlanEnv(b)
	var lat obs.Histogram
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.sys.PlanCache.InvalidateUser(env.user)
		t0 := time.Now()
		tp, err := env.sys.PlanTrip(env.user, env.partial, env.now, nil)
		lat.Observe(time.Since(t0))
		if err != nil {
			b.Fatal(err)
		}
		if tp.Source != pphcr.PlanSourceCold {
			b.Fatalf("source = %q", tp.Source)
		}
	}
	b.ReportMetric(float64(lat.Snapshot().Quantile(0.99)), "p99-ns/op")
}

func BenchmarkPlanTripWarm(b *testing.B) {
	env := getPlanEnv(b)
	// Prime the cache, then every iteration is a warm serve.
	if _, err := env.sys.PlanTrip(env.user, env.partial, env.now, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp, err := env.sys.PlanTrip(env.user, env.partial, env.now, nil)
		if err != nil {
			b.Fatal(err)
		}
		if tp.Source != pphcr.PlanSourceWarm {
			b.Fatalf("source = %q", tp.Source)
		}
	}
}

// ---- Staged pipeline batch benchmarks --------------------------------
//
// BenchmarkPlanBatch compares per-plan cost of warming 100 users'
// anticipated trips sequentially (one WarmPlan per trip: each call
// acquires and featurizes the candidate window and reads the user's
// preferences) against one WarmBatch through the staged pipeline (one
// candidate featurization per departure instant, one preference read
// per user). The per-plan gap is the amortization the batch execution
// path buys the precompute scheduler.

type fleetBenchEnv struct {
	sys  *pphcr.System
	reqs []pphcr.WarmRequest
}

var (
	fleetEnvOnce sync.Once
	fleetEnv     *fleetBenchEnv
	fleetEnvErr  error
)

func getFleetEnv(b *testing.B) *fleetBenchEnv {
	b.Helper()
	fleetEnvOnce.Do(func() {
		const users = 100
		w, err := synth.GenerateWorld(synth.Params{
			Seed: 33, Days: 5, Users: users, Stations: 2, PodcastsPerDay: 40,
			TrainingDocsPerCategory: 8,
		})
		if err != nil {
			fleetEnvErr = err
			return
		}
		sys, err := pphcr.New(pphcr.Config{TrainingDocs: w.Training, Vocabulary: w.FlatVocab})
		if err != nil {
			fleetEnvErr = err
			return
		}
		for _, raw := range w.Corpus {
			if _, err := sys.IngestPodcast(raw); err != nil {
				fleetEnvErr = err
				return
			}
		}
		var reqs []pphcr.WarmRequest
		for _, p := range w.Personas {
			user := p.Profile.UserID
			if err := sys.RegisterUser(p.Profile); err != nil {
				fleetEnvErr = err
				return
			}
			fed := 0
			for d := 0; fed < 2 && d < w.Params.Days; d++ {
				day := w.Params.StartDate.AddDate(0, 0, d)
				if wd := day.Weekday(); wd == time.Saturday || wd == time.Sunday {
					continue
				}
				for _, morning := range []bool{true, false} {
					trace, _, err := w.CommuteTrace(p, day, morning)
					if err != nil {
						fleetEnvErr = err
						return
					}
					for _, fix := range trace {
						if err := sys.RecordFix(user, fix); err != nil {
							fleetEnvErr = err
							return
						}
					}
				}
				fed++
			}
			if _, err := sys.CompactTracking(user); err != nil {
				continue
			}
			day := w.Params.StartDate.AddDate(0, 0, 7)
			for day.Weekday() == time.Saturday || day.Weekday() == time.Sunday {
				day = day.AddDate(0, 0, 1)
			}
			full, _, err := w.CommuteTrace(p, day, true)
			if err != nil {
				fleetEnvErr = err
				return
			}
			cm, ok := sys.MobilityModel(user)
			if !ok {
				continue
			}
			from := cm.Mobility.MatchPlace(full[0].Point)
			if from == predict.NoPlace {
				continue
			}
			// One shared warm instant for the whole sweep — exactly what
			// the precompute scheduler's Poll does (all jobs of one pass
			// carry the poll instant), and what lets the batch share one
			// candidate featurization.
			at := day.Add(8 * time.Hour)
			cands := cm.Mobility.PredictDestination(from, at)
			if len(cands) == 0 {
				continue
			}
			reqs = append(reqs, pphcr.WarmRequest{
				UserID: user, From: from, Dest: cands[0].Place,
				Prob: cands[0].Prob, At: at,
			})
		}
		if len(reqs) < users/2 {
			fleetEnvErr = fmt.Errorf("only %d/%d warm jobs enumerated", len(reqs), users)
			return
		}
		fleetEnv = &fleetBenchEnv{sys: sys, reqs: reqs}
	})
	if fleetEnvErr != nil {
		b.Fatal(fleetEnvErr)
	}
	return fleetEnv
}

func BenchmarkPlanBatch(b *testing.B) {
	b.Run("sequential", func(b *testing.B) {
		env := getFleetEnv(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range env.reqs {
				if _, err := env.sys.WarmPlan(r.UserID, r.From, r.Dest, r.Prob, r.At); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(env.reqs)), "ns/plan")
	})
	b.Run("batch", func(b *testing.B) {
		env := getFleetEnv(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, res := range env.sys.WarmBatch(env.reqs) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(env.reqs)), "ns/plan")
	})
}

// BenchmarkSkipReplacement measures picking the one replacement clip
// after a manual skip for a listener with a broad preference vector:
// the pre-pipeline algorithm ranked (and sorted) the entire candidate
// list via Recommend(user, ctx, 0) and scanned for the first unskipped
// item; the Rank stage's k=1 bounded heap selects it directly.
func BenchmarkSkipReplacement(b *testing.B) {
	env := getPlanEnv(b)
	sys := env.sys
	const user = "skip-bench-user"
	now := env.now
	// A listener with established taste across every category, plus a few
	// skips: the realistic worst case for the full-rank scan.
	seen := map[string]bool{}
	skips := 0
	for _, it := range sys.Repo.All() {
		cat := it.TopCategory()
		kind := feedback.Like
		if !seen[cat] {
			seen[cat] = true
		} else if skips < 5 {
			kind = feedback.Skip
			skips++
		} else {
			continue
		}
		if err := sys.AddFeedback(feedback.Event{
			UserID: user, ItemID: it.ID, Kind: kind,
			At: now.Add(-2 * time.Hour), Categories: it.Categories,
		}); err != nil {
			b.Fatal(err)
		}
	}
	ctx := recommend.Context{Now: now}
	b.Run("fullrank", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			skipped := sys.Feedback.SkippedItems(user)
			var picked recommend.Scored
			for _, sc := range sys.Recommend(user, ctx, 0) {
				if !skipped[sc.Item.ID] {
					picked = sc
					break
				}
			}
			if picked.Item == nil {
				b.Fatal("no replacement")
			}
		}
	})
	b.Run("topk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// A skip of an unknown clip records no feedback: this is the
			// pure replacement query through the k=1 heap.
			sc, err := sys.SkipClip(user, "bench-nonexistent-clip", ctx)
			if err != nil {
				b.Fatal(err)
			}
			if sc.Item == nil {
				b.Fatal("no replacement")
			}
		}
	})
}

// BenchmarkPlanCacheConcurrent measures the sharded cache itself under
// parallel mixed load (15/16 reads, 1/16 writes across 64 users).
func BenchmarkPlanCacheConcurrent(b *testing.B) {
	c := plancache.New(plancache.Config{Shards: 32, TTL: time.Hour})
	keys := make([]plancache.Key, 0, 64*16)
	for u := 0; u < 64; u++ {
		for d := 0; d < 16; d++ {
			keys = append(keys, plancache.Key{
				User:   fmt.Sprintf("user-%03d", u),
				Dest:   predict.PlaceID(d),
				Bucket: predict.TimeBucket(d % 12),
			})
		}
	}
	for _, k := range keys {
		c.Put(k, &pphcr.TripPlan{})
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := keys[i%len(keys)]
			if i%16 == 0 {
				c.Put(k, &pphcr.TripPlan{})
			} else {
				c.Get(k)
			}
			i++
		}
	})
}

// ---- Sharded per-user state benchmarks --------------------------------
//
// BenchmarkConcurrentUserState hammers the striped per-user state and
// the incremental preference index with a parallel mixed workload across
// 256 users (3/4 preference reads and plan/injection lookups, 1/4
// feedback appends). Under the seed's single global mutex every pair of
// operations serialized; with striping plus the O(categories) index the
// throughput should scale with cores.
func BenchmarkConcurrentUserState(b *testing.B) {
	env := getPlanEnv(b)
	sys := env.sys
	users := make([]string, 256)
	for i := range users {
		users[i] = fmt.Sprintf("bench-user-%03d", i)
	}
	cats := map[string]float64{"food": 0.6, "music": 0.4}
	now := env.now
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(seq.Add(1))
			u := users[i%len(users)]
			switch i % 4 {
			case 0:
				_ = sys.AddFeedback(feedback.Event{
					UserID: u, ItemID: "it", Kind: feedback.ImplicitListen,
					At: now.Add(time.Duration(i) * time.Millisecond), Categories: cats,
				})
			case 1:
				sys.Preferences(u, now.Add(time.Duration(i)*time.Millisecond))
			case 2:
				sys.LastPlan(u)
			default:
				sys.PendingInjections(u)
			}
		}
	})
}
