package pphcr_test

import (
	"strings"
	"testing"
	"time"

	"pphcr"
	"pphcr/internal/distraction"
	"pphcr/internal/feedback"
	"pphcr/internal/recommend"
	"pphcr/internal/streamsim"
	"pphcr/internal/synth"
	"pphcr/internal/trajectory"
)

// buildWorld assembles a loaded system for integration tests.
func buildWorld(t testing.TB) (*pphcr.System, *synth.World, time.Time) {
	t.Helper()
	w, err := synth.GenerateWorld(synth.Params{
		Seed: 99, Days: 7, Users: 4, Stations: 4, PodcastsPerDay: 40,
		TrainingDocsPerCategory: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := pphcr.New(pphcr.Config{
		TrainingDocs: w.Training, Vocabulary: w.FlatVocab, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	horizon := w.Params.StartDate.AddDate(0, 0, w.Params.Days+8)
	for _, svc := range w.Directory.Services() {
		if err := sys.Directory.AddService(svc); err != nil {
			t.Fatal(err)
		}
		for _, p := range w.Directory.ProgramsBetween(svc.ID, w.Params.StartDate, horizon) {
			if err := sys.Directory.AddProgram(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	var last time.Time
	for _, raw := range w.Corpus {
		if _, err := sys.IngestPodcast(raw); err != nil {
			t.Fatal(err)
		}
		if raw.Published.After(last) {
			last = raw.Published
		}
	}
	for _, p := range w.Personas {
		if err := sys.RegisterUser(p.Profile); err != nil {
			t.Fatal(err)
		}
	}
	return sys, w, last.Add(time.Hour)
}

// TestArchitecturePipeline exercises the full Fig 3 architecture in one
// flow: ingestion through the ASR+Bayes pipeline, broker event fan-out,
// user management (profile, feedback, tracking), compaction, proactive
// planning, and the streaming plane that plays the plan out.
func TestArchitecturePipeline(t *testing.T) {
	sys, w, _ := buildWorld(t)

	// Broker observers for every stage (as the real components would
	// subscribe on RabbitMQ).
	qTrack, err := sys.Broker.Bind("pipeline-tracking", "tracking.#")
	if err != nil {
		t.Fatal(err)
	}
	qFeedback, err := sys.Broker.Bind("pipeline-feedback", "feedback.#")
	if err != nil {
		t.Fatal(err)
	}
	qPlans, err := sys.Broker.Bind("pipeline-plans", "recommendations.#")
	if err != nil {
		t.Fatal(err)
	}

	persona := w.Personas[0]
	user := persona.Profile.UserID

	// 1. Classification stage: ingested items carry sane category mass.
	if sys.Repo.Len() != len(w.Corpus) {
		t.Fatalf("repo %d items, want %d", sys.Repo.Len(), len(w.Corpus))
	}
	correct := 0
	for _, raw := range w.Corpus {
		it, ok := sys.Repo.Get(raw.ID)
		if !ok {
			t.Fatalf("item %s missing", raw.ID)
		}
		if it.TopCategory() == strings.Fields(raw.Title)[0] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(w.Corpus)); acc < 0.9 {
		t.Fatalf("pipeline accuracy %.2f", acc)
	}

	// 2. Tracking stage: a week of commutes, then compaction.
	for d := 0; d < w.Params.Days; d++ {
		day := w.Params.StartDate.AddDate(0, 0, d)
		if wd := day.Weekday(); wd == time.Saturday || wd == time.Sunday {
			continue
		}
		for _, morning := range []bool{true, false} {
			trace, _, err := w.CommuteTrace(persona, day, morning)
			if err != nil {
				t.Fatal(err)
			}
			for _, fix := range trace {
				if err := sys.RecordFix(user, fix); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	cm, err := sys.CompactTracking(user)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.StayPoints) < 2 {
		t.Fatalf("staypoints = %d", len(cm.StayPoints))
	}
	if qTrack.Len() == 0 {
		t.Fatal("no tracking events on the broker")
	}

	// 3. Feedback stage: likes sharpen preferences.
	likedCat := persona.Profile.Interests[0]
	for i, it := range sys.Repo.ByCategory(likedCat) {
		if i >= 4 {
			break
		}
		if err := sys.AddFeedback(feedback.Event{
			UserID: user, ItemID: it.ID, Kind: feedback.Like,
			At: w.Params.StartDate.AddDate(0, 0, 6), Categories: it.Categories,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if qFeedback.Len() != 4 {
		t.Fatalf("feedback events on broker = %d", qFeedback.Len())
	}

	// 4. Proactive planning on the next weekday commute.
	day := w.Params.StartDate.AddDate(0, 0, w.Params.Days)
	for day.Weekday() == time.Saturday || day.Weekday() == time.Sunday {
		day = day.AddDate(0, 0, 1)
	}
	full, route, err := w.CommuteTrace(persona, day, true)
	if err != nil {
		t.Fatal(err)
	}
	var partial trajectory.Trace
	for _, fix := range full {
		if fix.Time.Sub(full[0].Time) > 3*time.Minute {
			break
		}
		partial = append(partial, fix)
	}
	tl := distraction.Build(route.Junctions, route.Length, full.AverageSpeed(), 0.3, distraction.DefaultParams())
	now := partial[len(partial)-1].Time
	tp, err := sys.PlanTrip(user, partial, now, &tl)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Proactive {
		t.Fatalf("expected proactive plan, got: %s", tp.Reason)
	}
	if len(tp.Plan.Items) == 0 {
		t.Fatal("empty plan")
	}
	if qPlans.Len() != 1 {
		t.Fatalf("plan events on broker = %d", qPlans.Len())
	}

	// 5. Streaming plane: the plan's clips splice into the live timeline.
	service := persona.Profile.FavoriteService
	player := &streamsim.Player{Dir: sys.Directory, ServiceID: service, BroadcastCapable: true}
	var inserts []streamsim.Insertion
	cursor := now.Add(time.Minute)
	end := now.Add(tp.Prediction.DeltaT)
	for _, item := range tp.Plan.Items {
		if cursor.Add(item.Scored.Item.Duration).After(end) {
			break
		}
		inserts = append(inserts, streamsim.Insertion{
			Kind: streamsim.SourceClip, Ref: item.Scored.Item.ID,
			Title: item.Scored.Item.Title,
			At:    cursor, Duration: item.Scored.Item.Duration,
		})
		cursor = cursor.Add(item.Scored.Item.Duration)
	}
	if len(inserts) == 0 {
		t.Fatal("no insertions fit the session")
	}
	segments, err := player.BuildTimeline(now, end, inserts)
	if err != nil {
		t.Fatal(err)
	}
	if err := streamsim.Validate(segments, now, end); err != nil {
		t.Fatal(err)
	}
	bw := player.AccountBandwidth(segments, 96)
	if bw.UnicastBytes == 0 || bw.BroadcastBytes == 0 {
		t.Fatalf("bandwidth accounting degenerate: %+v", bw)
	}
}

// TestRecommendationConsistency checks that the facade's Recommend is
// consistent with the underlying scorer: same context, same top item,
// and injected items cannot be displaced by organic ranking.
func TestRecommendationConsistency(t *testing.T) {
	sys, w, now := buildWorld(t)
	persona := w.Personas[1]
	user := persona.Profile.UserID
	ctx := recommend.Context{Now: now}

	direct := sys.Scorer.Rank(sys.Preferences(user, now), sys.Candidates(now), ctx, 5)
	viaFacade := sys.Recommend(user, ctx, 5)
	if len(direct) != len(viaFacade) {
		t.Fatalf("lengths differ: %d vs %d", len(direct), len(viaFacade))
	}
	for i := range direct {
		if direct[i].Item.ID != viaFacade[i].Item.ID {
			t.Fatalf("rank %d differs: %s vs %s", i, direct[i].Item.ID, viaFacade[i].Item.ID)
		}
	}
}

// TestDeterministicWorldToPlan verifies the whole stack is reproducible:
// two identically-seeded runs produce identical proactive plans.
func TestDeterministicWorldToPlan(t *testing.T) {
	planIDs := func() []string {
		sys, w, _ := buildWorld(t)
		persona := w.Personas[0]
		user := persona.Profile.UserID
		for d := 0; d < 5; d++ {
			day := w.Params.StartDate.AddDate(0, 0, d)
			if wd := day.Weekday(); wd == time.Saturday || wd == time.Sunday {
				continue
			}
			for _, morning := range []bool{true, false} {
				trace, _, err := w.CommuteTrace(persona, day, morning)
				if err != nil {
					t.Fatal(err)
				}
				for _, fix := range trace {
					if err := sys.RecordFix(user, fix); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if _, err := sys.CompactTracking(user); err != nil {
			t.Fatal(err)
		}
		day := w.Params.StartDate.AddDate(0, 0, w.Params.Days)
		for day.Weekday() == time.Saturday || day.Weekday() == time.Sunday {
			day = day.AddDate(0, 0, 1)
		}
		full, _, err := w.CommuteTrace(persona, day, true)
		if err != nil {
			t.Fatal(err)
		}
		var partial trajectory.Trace
		for _, fix := range full {
			if fix.Time.Sub(full[0].Time) > 3*time.Minute {
				break
			}
			partial = append(partial, fix)
		}
		tp, err := sys.PlanTrip(user, partial, partial[len(partial)-1].Time, nil)
		if err != nil {
			t.Fatal(err)
		}
		var ids []string
		for _, it := range tp.Plan.Items {
			ids = append(ids, it.Scored.Item.ID)
		}
		return ids
	}
	a, b := planIDs(), planIDs()
	if len(a) != len(b) {
		t.Fatalf("plan sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan differs at %d: %s vs %s", i, a[i], b[i])
		}
	}
}
