package pphcr

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"pphcr/internal/feedback"
	"pphcr/internal/profile"
	"pphcr/internal/trajectory"
)

// assertIndexMatchesReplay compares the incremental preference index
// against the O(events) replay oracle to 1e-9 for one user.
func assertIndexMatchesReplay(t *testing.T, sys *System, user string, now time.Time) {
	t.Helper()
	params := feedback.DefaultPreferenceParams()
	got := sys.Feedback.Preferences(user, now, params)
	want := sys.Feedback.PreferencesReplay(user, now, params)
	keys := map[string]bool{}
	for k := range got {
		keys[k] = true
	}
	for k := range want {
		keys[k] = true
	}
	for k := range keys {
		if math.Abs(got[k]-want[k]) > 1e-9 {
			t.Errorf("user %s category %q: incremental %v vs replay %v", user, k, got[k], want[k])
		}
	}
}

// TestConcurrentFeedbackPreferencesPlan exercises the sharded per-user
// state and the incremental preference index under -race: concurrent
// AddFeedback, Preferences, CompactFeedback, PlanTrip and
// CompactTracking on both the same and different users, then checks the
// index against the replay oracle.
func TestConcurrentFeedbackPreferencesPlan(t *testing.T) {
	sys, w := newTestSystem(t)
	var lastPublished time.Time
	for _, raw := range w.Corpus {
		if _, err := sys.IngestPodcast(raw); err != nil {
			t.Fatal(err)
		}
		if raw.Published.After(lastPublished) {
			lastPublished = raw.Published
		}
	}
	now := lastPublished.Add(time.Hour)

	const nUsers = 6
	users := make([]string, nUsers)
	for i := range users {
		users[i] = fmt.Sprintf("worker-%02d", i)
		if err := sys.RegisterUser(profile.Profile{UserID: users[i], Interests: []string{"food", "music"}}); err != nil {
			t.Fatal(err)
		}
	}

	// Give the first persona a mobility model so PlanTrip runs alongside.
	persona := w.Personas[0]
	driver := persona.Profile.UserID
	if err := sys.RegisterUser(persona.Profile); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < w.Params.Days; d++ {
		day := w.Params.StartDate.AddDate(0, 0, d)
		if wd := day.Weekday(); wd == time.Saturday || wd == time.Sunday {
			continue
		}
		for _, morning := range []bool{true, false} {
			trace, _, err := w.CommuteTrace(persona, day, morning)
			if err != nil {
				t.Fatal(err)
			}
			for _, fix := range trace {
				if err := sys.RecordFix(driver, fix); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if _, err := sys.CompactTracking(driver); err != nil {
		t.Fatal(err)
	}
	day := w.Params.StartDate.AddDate(0, 0, 7)
	full, _, err := w.CommuteTrace(persona, day, true)
	if err != nil {
		t.Fatal(err)
	}
	var partial trajectory.Trace
	for _, fix := range full {
		if fix.Time.Sub(full[0].Time) > 3*time.Minute {
			break
		}
		partial = append(partial, fix)
	}
	planNow := partial[len(partial)-1].Time

	const eventsPerUser = 400
	kinds := []feedback.Kind{feedback.ImplicitListen, feedback.Skip, feedback.Like, feedback.Dislike}

	var wg sync.WaitGroup
	// One feedback writer per user — plus one extra writer hammering
	// users[0], so the same-user path is contended too. Each writer owns
	// its category maps (and scribbles on them after every append, so a
	// store that aliased caller memory would corrupt under the oracle).
	writer := func(user string, salt int) {
		defer wg.Done()
		cats := []map[string]float64{
			{"food": 0.7, "culture": 0.3},
			{"music": 1},
			{"sport": 0.5, "regional": 0.5},
		}
		restore := []map[string]float64{
			{"food": 0.7, "culture": 0.3},
			{"music": 1},
			{"sport": 0.5, "regional": 0.5},
		}
		for i := 0; i < eventsPerUser; i++ {
			c := (i + salt) % len(cats)
			e := feedback.Event{
				UserID:     user,
				ItemID:     fmt.Sprintf("it-%d-%d", salt, i),
				Kind:       kinds[(i+salt)%len(kinds)],
				At:         now.Add(-time.Duration((i*7+salt)%5000) * time.Minute),
				Categories: cats[c],
			}
			if err := sys.AddFeedback(e); err != nil {
				t.Error(err)
				return
			}
			// The caller mutates its map after the append — the store
			// must have deep-copied (the aliasing regression).
			for k := range cats[c] {
				cats[c][k] = -1e9
			}
			for k, v := range restore[c] {
				cats[c][k] = v
			}
		}
	}
	for i, u := range users {
		wg.Add(1)
		go writer(u, i)
	}
	wg.Add(1)
	go writer(users[0], nUsers)

	// Readers race the writers on the same users.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(salt int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				u := users[(j+salt)%len(users)]
				sys.Preferences(u, now.Add(time.Duration(j)*time.Second))
				sys.Feedback.SkippedItems(u)
			}
		}(i)
	}
	// Periodic feedback compaction during the storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			sys.CompactFeedback(users[j%len(users)], now, 24*time.Hour)
		}
	}()
	// PlanTrip + CompactTracking on the driver, Injects on the rest.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 25; j++ {
			if _, err := sys.PlanTrip(driver, partial, planNow, nil); err != nil {
				t.Error(err)
				return
			}
			if j%10 == 9 {
				if _, err := sys.CompactTracking(driver); err != nil {
					t.Error(err)
					return
				}
			}
			sys.LastPlan(driver)
			sys.MobilityUsers()
		}
	}()
	wg.Wait()

	// Quiesced: every user's incremental vector must match the replay
	// oracle, including the compacted ones and the doubly-written user.
	for _, u := range users {
		assertIndexMatchesReplay(t, sys, u, now)
		assertIndexMatchesReplay(t, sys, u, now.Add(72*time.Hour))
	}
	assertIndexMatchesReplay(t, sys, driver, now)

	st := sys.Feedback.Stats()
	if want := int64((nUsers + 1) * eventsPerUser); st.Appends < want {
		t.Fatalf("appends = %d, want ≥ %d", st.Appends, want)
	}
	if st.IndexReads == 0 {
		t.Fatal("no index reads recorded")
	}
	ls := sys.LockStats()
	if ls.Ops == 0 || ls.Shards != DefaultUserShards {
		t.Fatalf("lock stats = %+v", ls)
	}
	// Every durable write path crossed the commit barrier; with no
	// checkpointer quiescing, the read-side stripes never contend.
	if ls.Barrier.Stripes != DefaultUserShards || ls.Barrier.Ops == 0 {
		t.Fatalf("barrier stats = %+v", ls.Barrier)
	}
	if ls.Barrier.Quiesces != 0 || ls.Barrier.Contended != 0 {
		t.Fatalf("uncontended run reported barrier contention: %+v", ls.Barrier)
	}
}
