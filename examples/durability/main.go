// Durability: run a PPHCR system on a write-ahead log, checkpoint it,
// crash it mid-flight with a torn final record, and recover a fresh
// instance to the exact pre-crash state — plus the atomic snapshot
// helper every file-level snapshot in this repo uses.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"pphcr"
	"pphcr/internal/durable"
	"pphcr/internal/feedback"
	"pphcr/internal/profile"
	"pphcr/internal/synth"
)

func main() {
	world, err := synth.GenerateWorld(synth.Params{Seed: 4, Days: 3, Users: 1, PodcastsPerDay: 40})
	if err != nil {
		log.Fatal(err)
	}
	cfg := pphcr.Config{TrainingDocs: world.Training, Vocabulary: world.FlatVocab}

	dir, err := os.MkdirTemp("", "pphcr-durability-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. A fresh system bound to an empty data directory: every mutation
	//    below lands in the WAL before the call returns (SyncAlways).
	sys, err := pphcr.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dur, err := pphcr.OpenDurability(sys, pphcr.DurabilityOptions{Dir: dir, Sync: durable.SyncAlways})
	if err != nil {
		log.Fatal(err)
	}

	var newest time.Time
	for _, raw := range world.Corpus {
		if _, err := sys.IngestPodcast(raw); err != nil {
			log.Fatal(err)
		}
		if raw.Published.After(newest) {
			newest = raw.Published
		}
	}
	if err := sys.RegisterUser(profile.Profile{UserID: "greg", Name: "Greg", Interests: []string{"sport"}}); err != nil {
		log.Fatal(err)
	}
	// 2. A checkpoint folds everything so far into one atomic snapshot
	//    and truncates the covered WAL segments.
	if err := dur.Checkpoint(); err != nil {
		log.Fatal(err)
	}

	// 3. More feedback lands after the checkpoint — recovery must
	//    replay it from the WAL tail.
	now := newest.Add(time.Hour)
	var before map[string]float64
	for i, it := range sys.Repo.ByCategory("sport") {
		if i >= 5 {
			break
		}
		// The state before the final event is what recovery must land
		// on: the crash below tears that last record mid-write.
		before = sys.Preferences("greg", now)
		if err := sys.AddFeedback(feedback.Event{
			UserID: "greg", ItemID: it.ID, Kind: feedback.Like,
			At: now.Add(-time.Hour), Categories: it.Categories,
		}); err != nil {
			log.Fatal(err)
		}
	}
	st := dur.Stats()
	fmt.Printf("before crash: %d items, %d WAL events appended, %d checkpoints\n",
		sys.Repo.Len(), st.WAL.Appended, st.Checkpoints)

	// 4. Crash: no flush, no final checkpoint — and tear the last WAL
	//    record the way a power cut mid-write would.
	dur.Crash()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	last := segs[len(segs)-1]
	if info, err := os.Stat(last); err == nil && info.Size() > 8 {
		_ = os.Truncate(last, info.Size()-4)
	}

	// 5. Recovery: newest valid checkpoint + WAL tail replay, torn
	//    final record dropped.
	restored, err := pphcr.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rdur, err := pphcr.OpenDurability(restored, pphcr.DurabilityOptions{Dir: dir, Sync: durable.SyncAlways})
	if err != nil {
		log.Fatal(err)
	}
	defer rdur.Close()
	fmt.Printf("recovered: %d items, %d WAL events replayed (torn tail dropped: %v)\n",
		restored.Repo.Len(), rdur.ReplayedEvents(), rdur.Stats().RecoveredTorn)

	after := restored.Preferences("greg", now)
	for cat, w := range before {
		if d := w - after[cat]; d > 1e-9 || d < -1e-9 {
			log.Fatalf("preference drift on %q: %v vs %v", cat, w, after[cat])
		}
	}
	fmt.Println("greg's preference vector survived the crash exactly (minus the torn final record)")

	// 6. SaveSnapshot is the standalone atomic dump (temp file + fsync +
	//    rename): a crash mid-write can never corrupt the only copy.
	snap := filepath.Join(dir, "backup.snap")
	if err := restored.SaveSnapshot(snap); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(snap)
	fmt.Printf("atomic snapshot saved: %s (%d bytes)\n", filepath.Base(snap), info.Size())
}
