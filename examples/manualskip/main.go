// Manual-skip reproduces the paper's Greg scenario (§2.1.1): Greg is
// passionate about technology and economics, an endless football talk is
// on his favorite station, and instead of zapping channels he presses
// skip — the app replaces the live program with recommended clips, each
// skip feeding implicit negative feedback back into his model, until he
// reaches a program he loves ("Wikiradio").
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"pphcr"
	"pphcr/internal/client"
	"pphcr/internal/profile"
	"pphcr/internal/radiodns"
	"pphcr/internal/recommend"
	"pphcr/internal/synth"
)

func main() {
	world, err := synth.GenerateWorld(synth.Params{Seed: 3, Days: 3, PodcastsPerDay: 80})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := pphcr.New(pphcr.Config{TrainingDocs: world.Training, Vocabulary: world.FlatVocab})
	if err != nil {
		log.Fatal(err)
	}
	var newest time.Time
	for _, raw := range world.Corpus {
		if _, err := sys.IngestPodcast(raw); err != nil {
			log.Fatal(err)
		}
		if raw.Published.After(newest) {
			newest = raw.Published
		}
	}
	now := newest.Add(time.Hour)
	// Greg's favorite station has football talk on right now.
	if err := sys.Directory.AddService(&radiodns.Service{
		ID: "radio1", Name: "Radio 1", GCC: "5e0", PI: "5201", Frequency: 8990,
	}); err != nil {
		log.Fatal(err)
	}
	if err := sys.Directory.AddProgram(&radiodns.Program{
		ID: "football-talk", ServiceID: "radio1", Title: "Endless football talk",
		Start: now.Add(-15 * time.Minute), Duration: time.Hour,
		Categories: map[string]float64{"sport": 1}, Replaceable: true,
	}); err != nil {
		log.Fatal(err)
	}
	if err := sys.RegisterUser(profile.Profile{
		UserID: "greg", Name: "Greg",
		Interests: []string{"technology", "economics"},
	}); err != nil {
		log.Fatal(err)
	}
	// Greg's true tastes drive his simulated behaviour.
	greg := client.NewListener("greg", map[string]float64{
		"technology": 0.6, "economics": 0.4,
	}, 42)

	fmt.Println("on air: 'Endless football talk' — Greg presses skip")
	ctx := recommend.Context{Now: now}
	sc, err := sys.SkipLive("greg", "radio1", ctx)
	if err != nil {
		log.Fatal(err)
	}
	for hop := 1; ; hop++ {
		out := greg.Play(sc.Item, ctx.Now)
		for _, ev := range out.Events {
			if err := sys.AddFeedback(ev); err != nil {
				log.Fatal(err)
			}
		}
		if !out.Skipped {
			fmt.Printf("  ✓ listening: %-42s (%s, program %q)\n",
				sc.Item.Title, sc.Item.TopCategory(), sc.Item.Program)
			if sc.Item.Program == "Wikiradio" {
				fmt.Println("\nGreg reached his favorite program 'Wikiradio' — no channel zap needed.")
			} else {
				fmt.Println("\nGreg settled on a matching program — no channel zap needed.")
			}
			break
		}
		fmt.Printf("  ✗ skip #%d: %-44s (%s) after %v\n",
			hop, sc.Item.Title, sc.Item.TopCategory(), out.Listened.Round(time.Second))
		ctx.Now = ctx.Now.Add(out.Listened)
		sc, err = sys.SkipClip("greg", sc.Item.ID, ctx)
		if errors.Is(err, pphcr.ErrNoAlternative) {
			fmt.Println("\nno alternatives left; back to live radio")
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if hop > 10 {
			log.Fatal("skip loop did not settle")
		}
	}
	fmt.Printf("\nfeedback recorded: %d events; Greg's learned preferences:\n", sys.Feedback.Len())
	prefs := sys.Preferences("greg", ctx.Now)
	for _, cat := range []string{"technology", "economics", "sport"} {
		fmt.Printf("  %-12s %+.3f\n", cat, prefs[cat])
	}
}
