// Drive-to-work reproduces the paper's Lilly scenario (§2.1.2 and
// Fig 4): after two weeks of tracked commutes the system recognizes the
// morning drive within minutes, predicts destination and ΔT, schedules
// personalized clips into the drive, and splices them into the live
// radio timeline with a time-shifted rejoin — all without Lilly touching
// the phone.
package main

import (
	"fmt"
	"log"
	"time"

	"pphcr"
	"pphcr/internal/content"
	"pphcr/internal/feedback"
	"pphcr/internal/streamsim"
	"pphcr/internal/synth"
	"pphcr/internal/trajectory"
)

func main() {
	world, err := synth.GenerateWorld(synth.Params{Seed: 7, Days: 14, Users: 3})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := pphcr.New(pphcr.Config{TrainingDocs: world.Training, Vocabulary: world.FlatVocab})
	if err != nil {
		log.Fatal(err)
	}
	horizon := world.Params.StartDate.AddDate(0, 0, world.Params.Days+8)
	for _, svc := range world.Directory.Services() {
		if err := sys.Directory.AddService(svc); err != nil {
			log.Fatal(err)
		}
		for _, p := range world.Directory.ProgramsBetween(svc.ID, world.Params.StartDate, horizon) {
			if err := sys.Directory.AddProgram(p); err != nil {
				log.Fatal(err)
			}
		}
	}
	for _, raw := range world.Corpus {
		if _, err := sys.IngestPodcast(raw); err != nil {
			log.Fatal(err)
		}
	}

	lilly := world.Personas[0]
	user := lilly.Profile.UserID
	if err := sys.RegisterUser(lilly.Profile); err != nil {
		log.Fatal(err)
	}
	// Lilly likes food programs; her feedback history says so.
	for i, it := range sys.Repo.ByCategory("food") {
		if i >= 5 {
			break
		}
		if err := sys.AddFeedback(feedback.Event{
			UserID: user, ItemID: it.ID, Kind: feedback.Like,
			At: world.Params.StartDate.AddDate(0, 0, 10), Categories: it.Categories,
		}); err != nil {
			log.Fatal(err)
		}
	}

	// Two weeks of commutes land in the tracking DB.
	fmt.Println("recording two weeks of commutes...")
	for d := 0; d < world.Params.Days; d++ {
		day := world.Params.StartDate.AddDate(0, 0, d)
		if wd := day.Weekday(); wd == time.Saturday || wd == time.Sunday {
			continue
		}
		for _, morning := range []bool{true, false} {
			trace, _, err := world.CommuteTrace(lilly, day, morning)
			if err != nil {
				log.Fatal(err)
			}
			for _, fix := range trace {
				if err := sys.RecordFix(user, fix); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	cm, err := sys.CompactTracking(user)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compacted: %d staying points, %d trips\n", len(cm.StayPoints), len(cm.Trips))

	// Monday morning, a week later: Lilly starts driving.
	day := world.Params.StartDate.AddDate(0, 0, world.Params.Days)
	for day.Weekday() != time.Monday {
		day = day.AddDate(0, 0, 1)
	}
	full, _, err := world.CommuteTrace(lilly, day, true)
	if err != nil {
		log.Fatal(err)
	}
	var partial trajectory.Trace
	for _, fix := range full {
		if fix.Time.Sub(full[0].Time) > 3*time.Minute {
			break
		}
		partial = append(partial, fix)
	}
	now := partial[len(partial)-1].Time
	tp, err := sys.PlanTrip(user, partial, now, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s — 3 minutes into the drive:\n", now.Format("Mon 15:04:05"))
	fmt.Printf("predicted destination: staying point %d (confidence %.2f)\n",
		tp.Prediction.Dest, tp.Prediction.Confidence)
	fmt.Printf("predicted remaining time ΔT: %v\n", tp.Prediction.DeltaT.Round(time.Second))
	if !tp.Proactive {
		log.Fatalf("system stayed reactive: %s", tp.Reason)
	}
	fmt.Println("\nproactive plan:")
	for i, it := range tp.Plan.Items {
		fmt.Printf("  %d. +%-8v %-44s (%v, score %.3f)\n",
			i+1, it.StartOffset.Round(time.Second), it.Scored.Item.Title,
			it.Scored.Item.Duration, it.Scored.Compound)
	}

	// Splice the first planned clip into the live radio timeline at the
	// next replaceable program boundary, then rejoin the replaced program
	// time-shifted (Fig 4).
	service := lilly.Profile.FavoriteService
	sessionEnd := now.Add(tp.Prediction.DeltaT)
	// The client buffer lets the app splice immediately: the clip starts
	// half a minute from now, and the interrupted live program is then
	// replayed time-shifted from its scheduled start (Lilly hears a show
	// that "began 20 minutes ago").
	insertAt := now.Add(30 * time.Second)
	var clip *content.Item
	for _, it := range tp.Plan.Items {
		if !insertAt.Add(it.Scored.Item.Duration + time.Minute).After(sessionEnd) {
			clip = it.Scored.Item
			break
		}
	}
	if clip == nil {
		fmt.Println("\nno planned clip fits before arrival; live radio keeps playing.")
		return
	}
	inserts := []streamsim.Insertion{{
		Kind: streamsim.SourceClip, Ref: clip.ID, Title: clip.Title,
		At: insertAt, Duration: clip.Duration,
	}}
	if onAir, err := sys.Directory.ProgramAt(service, insertAt); err == nil {
		shiftStart := insertAt.Add(clip.Duration)
		shiftDur := onAir.Duration
		if remaining := sessionEnd.Sub(shiftStart); shiftDur > remaining {
			shiftDur = remaining
		}
		if shiftDur > 0 {
			inserts = append(inserts, streamsim.Insertion{
				Kind: streamsim.SourceTimeShifted, Ref: onAir.ID,
				Title: onAir.Title + " (from its start)",
				At:    shiftStart, Duration: shiftDur,
				ShiftedProgramStart: onAir.Start,
			})
		}
	}
	player := &streamsim.Player{Dir: sys.Directory, ServiceID: service, BroadcastCapable: true}
	segments, err := player.BuildTimeline(now, sessionEnd, inserts)
	if err != nil {
		log.Fatal(err)
	}
	if err := streamsim.Validate(segments, now, sessionEnd); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplayback timeline (seamless):")
	for _, s := range segments {
		lag := ""
		if s.Lag > 0 {
			lag = fmt.Sprintf("  [%v behind live]", s.Lag.Round(time.Second))
		}
		fmt.Printf("  %s  %-9s  %s%s\n", s.Start.Format("15:04:05"), s.Kind, s.Title, lag)
	}
	bw := player.AccountBandwidth(segments, 96)
	fmt.Printf("\nbandwidth: broadcast %d KB, unicast %d KB (%.0f%% unicast)\n",
		bw.BroadcastBytes/1000, bw.UnicastBytes/1000, bw.UnicastShare()*100)
}
