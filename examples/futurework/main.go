// Futurework demonstrates the three extensions the paper's conclusions
// plan (§3), all implemented in this repository:
//
//  1. estimating the geographic relevance of archive items from their
//     (recognized) speech — package georelevance;
//  2. richer contexts — weather and activity signals in the compound
//     score — package recommend;
//  3. the ensemble effect of the recommendations list — MMR
//     diversification and daypart mixing — package ensemble.
package main

import (
	"fmt"
	"log"
	"time"

	"pphcr"
	"pphcr/internal/ensemble"
	"pphcr/internal/georelevance"
	"pphcr/internal/profile"
	"pphcr/internal/recommend"
	"pphcr/internal/synth"
)

func main() {
	world, err := synth.GenerateWorld(synth.Params{Seed: 5, Days: 3, PodcastsPerDay: 80})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := pphcr.New(pphcr.Config{TrainingDocs: world.Training, Vocabulary: world.FlatVocab})
	if err != nil {
		log.Fatal(err)
	}
	var newest time.Time
	transcripts := map[string]string{}
	for _, raw := range world.Corpus {
		if _, err := sys.IngestPodcast(raw); err != nil {
			log.Fatal(err)
		}
		transcripts[raw.ID] = raw.Speech
		if raw.Published.After(newest) {
			newest = raw.Published
		}
	}
	now := newest.Add(time.Hour)
	if err := sys.RegisterUser(profile.Profile{
		UserID: "lilly", Interests: []string{"food", "culture", "travel"},
	}); err != nil {
		log.Fatal(err)
	}

	// ── 1. Archive geo-relevance estimation ────────────────────────────
	fmt.Println("== 1. geographic relevance of archive items ==")
	var gazetteer []georelevance.Place
	for i, nodeID := range world.City.RingNodes[:4] {
		gazetteer = append(gazetteer, georelevance.Place{
			Name:   fmt.Sprintf("quartiere%02d", i),
			Center: world.City.Graph.Node(nodeID).Point,
			Radius: 1500,
		})
	}
	est, err := georelevance.NewEstimator(gazetteer)
	if err != nil {
		log.Fatal(err)
	}
	// A couple of archive items speak about a district; the estimator
	// finds them without any editorial tagging.
	local := world.Corpus[0]
	transcripts[local.ID] = transcripts[local.ID] + " quartiere01 quartiere01 mercato quartiere01"
	annotated := est.Annotate(sys.Repo, transcripts)
	fmt.Printf("annotated %d archive item(s) from speech alone\n", annotated)
	if it, ok := sys.Repo.Get(local.ID); ok && it.Geo != nil {
		fmt.Printf("  %s → center %s, radius %.0f m\n\n", it.ID, it.Geo.Center, it.Geo.Radius)
	}

	// ── 2. Richer contexts: weather and activity ───────────────────────
	fmt.Println("== 2. richer contexts ==")
	prefs := sys.Preferences("lilly", now)
	prefs["traffic"] = 0.4
	scorer := recommend.NewScorer(0.8)
	for _, weather := range []recommend.Weather{recommend.WeatherClear, recommend.WeatherSnow} {
		ctx := recommend.Context{Now: now, Driving: true, Weather: weather}
		top := scorer.Rank(prefs, sys.Candidates(now), ctx, 3)
		fmt.Printf("driving in %s:\n", weather)
		for i, sc := range top {
			fmt.Printf("  %d. %-38s (%s)\n", i+1, sc.Item.Title, sc.Item.TopCategory())
		}
	}
	fmt.Println()

	// ── 3. Ensemble effect of the list ─────────────────────────────────
	fmt.Println("== 3. list composition (ensemble effect) ==")
	ctx := recommend.Context{Now: now}
	base := sys.Scorer.Rank(prefs, sys.Candidates(now), ctx, 30)
	pure := base
	if len(pure) > 8 {
		pure = pure[:8]
	}
	diversified := ensemble.MMR(base, 0.6, 8)
	fmt.Printf("%-28s diversity=%.2f categories=%d relevance=%.2f\n",
		"relevance-only:", ensemble.Diversity(pure),
		ensemble.CategoryCoverage(pure), ensemble.MeanRelevance(pure))
	fmt.Printf("%-28s diversity=%.2f categories=%d relevance=%.2f\n",
		"MMR diversified:", ensemble.Diversity(diversified),
		ensemble.CategoryCoverage(diversified), ensemble.MeanRelevance(diversified))
	fmt.Println("\ndiversified list:")
	for i, sc := range diversified {
		fmt.Printf("  %d. %-38s (%s)\n", i+1, sc.Item.Title, sc.Item.TopCategory())
	}
}
