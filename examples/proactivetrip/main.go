// Proactive-trip reproduces the paper's Fig 2: when the car starts
// moving, the system predicts the travel duration ΔT and allocates the
// most relevant media items A, B, C, D for the available time — with
// item B tied to a location L_B the user will reach, scheduled so it
// plays before she passes it, and content transitions kept away from
// intersections and roundabouts.
package main

import (
	"fmt"
	"log"
	"time"

	"pphcr"
	"pphcr/internal/content"
	"pphcr/internal/distraction"
	"pphcr/internal/feedback"
	"pphcr/internal/synth"
	"pphcr/internal/trajectory"
)

func main() {
	world, err := synth.GenerateWorld(synth.Params{Seed: 13, Days: 14, Users: 2})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := pphcr.New(pphcr.Config{TrainingDocs: world.Training, Vocabulary: world.FlatVocab})
	if err != nil {
		log.Fatal(err)
	}
	for _, raw := range world.Corpus {
		if _, err := sys.IngestPodcast(raw); err != nil {
			log.Fatal(err)
		}
	}
	driver := world.Personas[0]
	user := driver.Profile.UserID
	if err := sys.RegisterUser(driver.Profile); err != nil {
		log.Fatal(err)
	}
	// Preference history matching the persona's declared interests.
	for _, cat := range driver.Profile.Interests {
		for i, it := range sys.Repo.ByCategory(cat) {
			if i >= 3 {
				break
			}
			if err := sys.AddFeedback(feedback.Event{
				UserID: user, ItemID: it.ID, Kind: feedback.Like,
				At: world.Params.StartDate.AddDate(0, 0, 12), Categories: it.Categories,
			}); err != nil {
				log.Fatal(err)
			}
		}
	}
	// Two weeks of commutes → mobility model.
	for d := 0; d < world.Params.Days; d++ {
		day := world.Params.StartDate.AddDate(0, 0, d)
		if wd := day.Weekday(); wd == time.Saturday || wd == time.Sunday {
			continue
		}
		for _, morning := range []bool{true, false} {
			trace, _, err := world.CommuteTrace(driver, day, morning)
			if err != nil {
				log.Fatal(err)
			}
			for _, fix := range trace {
				if err := sys.RecordFix(user, fix); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	if _, err := sys.CompactTracking(user); err != nil {
		log.Fatal(err)
	}

	// Today's drive: first three minutes observed.
	day := world.Params.StartDate.AddDate(0, 0, world.Params.Days)
	for day.Weekday() == time.Saturday || day.Weekday() == time.Sunday {
		day = day.AddDate(0, 0, 1)
	}
	full, route, err := world.CommuteTrace(driver, day, true)
	if err != nil {
		log.Fatal(err)
	}
	var partial trajectory.Trace
	for _, fix := range full {
		if fix.Time.Sub(full[0].Time) > 3*time.Minute {
			break
		}
		partial = append(partial, fix)
	}
	// Plant the L_B item: local news tied to a point 60% along the route.
	lb := full.Points().At(0.6)
	lbItem := &content.Item{
		ID: "item-B", Title: "Road works ahead at L_B", Program: "Local desk",
		Kind: content.KindNews, Duration: 3 * time.Minute,
		Published:  partial[0].Time.Add(-time.Hour),
		Categories: map[string]float64{driver.Profile.Interests[0]: 1},
		Geo:        &content.GeoRelevance{Center: lb, Radius: 800},
	}
	if err := sys.Repo.Add(lbItem); err != nil {
		log.Fatal(err)
	}
	// Distraction timeline from the road network's junctions.
	tl := distraction.Build(route.Junctions, route.Length,
		full.AverageSpeed(), trajectory.Complexity(full.Points(), 30),
		distraction.DefaultParams())

	now := partial[len(partial)-1].Time
	tp, err := sys.PlanTrip(user, partial, now, &tl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("car started moving; after 3 minutes the system knows:\n")
	fmt.Printf("  destination: staying point %d (confidence %.2f)\n", tp.Prediction.Dest, tp.Prediction.Confidence)
	fmt.Printf("  ΔT: %v  route: %.1f km with %d junctions\n",
		tp.Prediction.DeltaT.Round(time.Second), route.Length/1000, len(route.Junctions))
	if !tp.Proactive {
		log.Fatalf("not proactive: %s", tp.Reason)
	}
	fmt.Println("\nallocated media items:")
	letters := "ABCDEFGH"
	for i, it := range tp.Plan.Items {
		slot := "?"
		if i < len(letters) {
			slot = string(letters[i])
		}
		deadline := ""
		if it.HasDeadline {
			deadline = fmt.Sprintf("  (must start before +%v — location deadline)",
				it.Deadline.Round(time.Second))
		}
		fmt.Printf("  %s. +%-8v %-40s %v%s\n",
			slot, it.StartOffset.Round(time.Second), it.Scored.Item.Title,
			it.Scored.Item.Duration, deadline)
	}
	fmt.Printf("\nΔT used: %v of %v; every transition checked against %d distraction windows\n",
		tp.Plan.Used.Round(time.Second), tp.Plan.DeltaT.Round(time.Second), len(tl.Windows))
	for _, it := range tp.Plan.Items {
		if !tl.CalmAt(it.StartOffset, 0.65) {
			log.Fatalf("item %s starts in a distraction window", it.Scored.Item.ID)
		}
	}
	fmt.Println("no content transition falls inside an intersection/roundabout window ✓")
}
