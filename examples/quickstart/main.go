// Quickstart: build a PPHCR system over a small synthetic world, ingest
// podcasts through the ASR → Bayesian-classifier pipeline, register a
// listener, send feedback, and fetch a personalized recommendation list.
package main

import (
	"fmt"
	"log"
	"time"

	"pphcr"
	"pphcr/internal/feedback"
	"pphcr/internal/profile"
	"pphcr/internal/recommend"
	"pphcr/internal/synth"
)

func main() {
	// 1. A synthetic world substitutes the Rai assets: podcast corpus,
	//    station schedules and a classifier training set.
	world, err := synth.GenerateWorld(synth.Params{Seed: 1, Days: 3, Users: 1, PodcastsPerDay: 60})
	if err != nil {
		log.Fatal(err)
	}
	// 2. The system: content pipeline + user management + recommender.
	sys, err := pphcr.New(pphcr.Config{
		TrainingDocs: world.Training,
		Vocabulary:   world.FlatVocab,
	})
	if err != nil {
		log.Fatal(err)
	}
	// 3. Ingest the corpus (speech → simulated ASR → naive Bayes →
	//    repository).
	var newest time.Time
	for _, raw := range world.Corpus {
		if _, err := sys.IngestPodcast(raw); err != nil {
			log.Fatal(err)
		}
		if raw.Published.After(newest) {
			newest = raw.Published
		}
	}
	fmt.Printf("ingested %d podcasts into the repository\n", sys.Repo.Len())

	// 4. A listener with declared interests.
	if err := sys.RegisterUser(profile.Profile{
		UserID:    "lilly",
		Name:      "Lilly",
		Interests: []string{"food", "culture"},
	}); err != nil {
		log.Fatal(err)
	}
	// 5. Some explicit feedback sharpens the preference vector.
	now := newest.Add(time.Hour)
	for i, it := range sys.Repo.ByCategory("food") {
		if i >= 3 {
			break
		}
		if err := sys.AddFeedback(feedback.Event{
			UserID: "lilly", ItemID: it.ID, Kind: feedback.Like,
			At: now.Add(-2 * time.Hour), Categories: it.Categories,
		}); err != nil {
			log.Fatal(err)
		}
	}
	// 6. Recommendations for the current context.
	ranked := sys.Recommend("lilly", recommend.Context{Now: now}, 5)
	fmt.Println("\ntop recommendations for lilly:")
	for i, sc := range ranked {
		fmt.Printf("%d. %-40s %-12s compound=%.3f (content=%.3f context=%.3f)\n",
			i+1, sc.Item.Title, sc.Item.TopCategory(), sc.Compound, sc.Content, sc.Context)
	}
}
