package pphcr

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pphcr/internal/content"
	"pphcr/internal/durable"
	"pphcr/internal/feedback"
	"pphcr/internal/obs"
	"pphcr/internal/profile"
	"pphcr/internal/trajectory"
)

// Event payload schemas. Register/ingest/feedback events reuse the
// store types directly; the rest are thin argument records. All replay
// deterministically through the System entry points they were emitted
// from.
type (
	fixEvent struct {
		User string
		Fix  trajectory.Fix
	}
	compactEvent struct {
		User string
		// N is the trace-prefix length the model was compacted from,
		// pinned at emit time so replay is exact regardless of how
		// concurrent fixes interleaved with the compaction.
		N int
	}
	feedbackCompactEvent struct {
		User    string
		At      time.Time
		Horizon time.Duration
	}
	injectEvent struct {
		User, Item string
	}
	consumeEvent struct {
		User string
	}
)

// durableTypeForKind maps a feedback kind to its WAL event type: skips
// and dislikes are first-class in the log (the paper's negative-signal
// flows), everything else is a generic feedback event.
func durableTypeForKind(k feedback.Kind) durable.Type {
	switch k {
	case feedback.Skip:
		return durable.TypeSkip
	case feedback.Dislike:
		return durable.TypeDislike
	default:
		return durable.TypeFeedback
	}
}

// applyDurableEvent replays one WAL record through the entry point that
// emitted it. It runs during recovery, before the mutation hook is
// attached, so nothing is re-logged.
func (s *System) applyDurableEvent(e durable.Event) error {
	switch e.Type {
	case durable.TypeRegister:
		var p profile.Profile
		if err := json.Unmarshal(e.Payload, &p); err != nil {
			return err
		}
		return s.RegisterUser(p)
	case durable.TypeIngest:
		var it content.Item
		if err := json.Unmarshal(e.Payload, &it); err != nil {
			return err
		}
		return s.restoreItem(&it)
	case durable.TypeFix:
		var fe fixEvent
		if err := json.Unmarshal(e.Payload, &fe); err != nil {
			return err
		}
		return s.RecordFix(fe.User, fe.Fix)
	case durable.TypeFeedback, durable.TypeSkip, durable.TypeDislike:
		var fe feedback.Event
		if err := json.Unmarshal(e.Payload, &fe); err != nil {
			return err
		}
		return s.AddFeedback(fe)
	case durable.TypeCompact:
		var ce compactEvent
		if err := json.Unmarshal(e.Payload, &ce); err != nil {
			return err
		}
		idx := s.shardIndexFor(ce.User)
		s.barrier.rlock(idx)
		_, err := s.compactTracking(ce.User, ce.N)
		s.barrier.runlock(idx)
		return err
	case durable.TypeFeedbackCompact:
		var fc feedbackCompactEvent
		if err := json.Unmarshal(e.Payload, &fc); err != nil {
			return err
		}
		s.CompactFeedback(fc.User, fc.At, fc.Horizon)
		return nil
	case durable.TypeInject:
		var ie injectEvent
		if err := json.Unmarshal(e.Payload, &ie); err != nil {
			return err
		}
		return s.Inject(ie.User, ie.Item)
	case durable.TypeConsume:
		var ce consumeEvent
		if err := json.Unmarshal(e.Payload, &ce); err != nil {
			return err
		}
		s.consumeInjections(ce.User)
		return nil
	default:
		return fmt.Errorf("pphcr: unknown durable event type %d", e.Type)
	}
}

// DurabilityOptions parameterizes OpenDurability.
type DurabilityOptions struct {
	// Dir is the data directory holding WAL segments and checkpoints.
	Dir string
	// Sync is the WAL fsync policy (-wal-sync). Default durable.SyncAlways.
	Sync durable.SyncPolicy
	// SyncEvery is the SyncInterval tick. Default 50ms.
	SyncEvery time.Duration
	// SegmentBytes is the WAL rotation threshold. Default 8 MiB.
	SegmentBytes int64
	// KeepCheckpoints is how many checkpoint generations to retain (the
	// older ones are the fallback if the newest fails validation).
	// Default 2.
	KeepCheckpoints int
	// RetainSegments keeps WAL segments that checkpoints would otherwise
	// truncate. A replication leader sets it so the log holds every
	// user's full history from sequence 1 — the slice a rebalance replays
	// on a user's new owner (see internal/replicate). Checkpoints still
	// land and bound recovery time; only segment removal is skipped.
	RetainSegments bool
}

// Durability binds a System to its on-disk write-ahead log and
// checkpoints: OpenDurability recovers the newest durable state into
// the (fresh) System, then attaches the WAL so every subsequent
// mutation is logged; Checkpoint snapshots and truncates; Close takes a
// final checkpoint. One Durability per data directory.
type Durability struct {
	sys    *System
	dir    string
	wal    *durable.WAL
	keep   int
	retain bool

	// mu serializes Checkpoint against Close.
	mu     sync.Mutex
	closed bool

	replayed       int
	torn           bool
	recovered      bool
	checkpoints    atomic.Int64
	checkpointErrs atomic.Int64
	lastCheckpoint atomic.Int64 // unix nanos; 0 = never
	// lastBarrierNs / totalBarrierNs measure the write-path pause each
	// checkpoint's quiesce imposed (snapshot serialization + WAL
	// rotation) — the latency cost durability charges the hot path,
	// reported on /stats.
	lastBarrierNs  atomic.Int64
	totalBarrierNs atomic.Int64
	// pauseHist is the distribution of those pauses — the p99 of the
	// stall a checkpoint can inject into every write path.
	pauseHist obs.Histogram
}

// OpenDurability recovers state from o.Dir into sys — which must be
// freshly constructed with the same Config as the crashed instance —
// and attaches the write-ahead log to its mutation hook.
//
// Recovery restores the newest checkpoint that passes CRC validation
// (falling back to an older retained one if the newest is damaged),
// then replays the WAL segments the checkpoint does not cover, in
// order, through the System entry points. A torn final record — the
// signature of a crash mid-append — is tolerated and dropped; torn
// records anywhere else fail recovery loudly.
func OpenDurability(sys *System, o DurabilityOptions) (*Durability, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("pphcr: DurabilityOptions.Dir required")
	}
	if o.KeepCheckpoints <= 0 {
		o.KeepCheckpoints = 2
	}
	d := &Durability{sys: sys, dir: o.Dir, keep: o.KeepCheckpoints, retain: o.RetainSegments}

	cps, err := durable.ListCheckpoints(o.Dir)
	if err != nil {
		return nil, fmt.Errorf("pphcr: listing checkpoints: %w", err)
	}
	var fromSeq int64
	for i := len(cps) - 1; i >= 0; i-- {
		data, err := durable.ReadCheckpoint(cps[i].Path)
		if err != nil {
			continue // damaged: fall back to the previous generation
		}
		if err := sys.Restore(bytes.NewReader(data)); err != nil {
			return nil, fmt.Errorf("pphcr: restoring checkpoint %d: %w", cps[i].Seq, err)
		}
		fromSeq = cps[i].Seq
		d.recovered = true
		break
	}
	if len(cps) > 0 && !d.recovered {
		// Checkpoints exist but none validated. Booting anyway would
		// replay only the retained WAL tail over an empty system and
		// silently serve with most state gone — data loss must be a
		// loud startup failure, not a quiet degradation.
		return nil, fmt.Errorf("pphcr: %d checkpoint(s) in %s but none passed validation", len(cps), o.Dir)
	}
	st, err := durable.Replay(o.Dir, fromSeq, sys.applyDurableEvent)
	if err != nil {
		return nil, fmt.Errorf("pphcr: replaying WAL: %w", err)
	}
	d.replayed = st.Events
	d.torn = st.Torn
	if st.Events > 0 {
		d.recovered = true
	}

	wal, err := durable.OpenWAL(o.Dir, durable.Options{
		SegmentBytes: o.SegmentBytes,
		Sync:         o.Sync,
		SyncEvery:    o.SyncEvery,
		Stripes:      len(sys.shards),
		// Replay just totally ordered the retained tail; hand its max
		// sequence over so the open does not re-read every segment.
		InitialSeq: st.MaxSeq,
	})
	if err != nil {
		return nil, err
	}
	d.wal = wal
	// The System's barrier stripe doubles as the WAL staging stripe, so
	// writers that share no barrier state share no staging state either.
	sys.SetMutationHook(wal.AppendTo)
	return d, nil
}

// Recovered reports whether opening found prior state (a checkpoint or
// WAL events) — the server uses it to skip its synthetic preload.
func (d *Durability) Recovered() bool { return d.recovered }

// Healthy reports whether the durability layer can still accept writes:
// nil while the WAL is live, the sticky wedge/terminal error once a
// write or commit failure killed the log. The readiness probe uses it
// to turn a broken node 503 so a load balancer ejects it.
func (d *Durability) Healthy() error { return d.wal.Err() }

// SetFsyncDegraded injects (0 clears) a per-fsync stall into the WAL —
// the degraded-disk fault mode scenario runs flip at phase boundaries.
// Acked writes stay durable; only latency degrades.
func (d *Durability) SetFsyncDegraded(stall time.Duration) { d.wal.SetFsyncDegraded(stall) }

// Degraded reports partial degradation: non-nil while the WAL runs in
// degraded-fsync mode. Distinct from Healthy — a degraded node still
// accepts and persists writes (slowly), so /readyz reports it as
// degraded rather than ejecting it, and the probe must not flap.
func (d *Durability) Degraded() error {
	if stall := d.wal.FsyncDegraded(); stall > 0 {
		return fmt.Errorf("wal fsync degraded: injected %v stall per fsync", stall)
	}
	return nil
}

// PauseHistogram is the checkpoint write-path pause distribution, for
// metrics-endpoint registration.
func (d *Durability) PauseHistogram() *obs.Histogram { return &d.pauseHist }

// WALAppendHistogram / WALFsyncHistogram expose the log's latency
// distributions for metrics-endpoint registration.
func (d *Durability) WALAppendHistogram() *obs.Histogram { return d.wal.AppendHistogram() }

// WALFsyncHistogram is the WAL flush+fsync latency distribution.
func (d *Durability) WALFsyncHistogram() *obs.Histogram { return d.wal.FsyncHistogram() }

// ReplayedEvents returns the number of WAL records applied at open.
func (d *Durability) ReplayedEvents() int { return d.replayed }

// Checkpoint writes a full snapshot and truncates the WAL segments it
// covers. The write paths are paused only while the snapshot serializes
// to memory and the WAL rotates; the disk writes happen outside the
// barrier. The snapshot lands atomically (temp file + fsync + rename),
// older generations beyond KeepCheckpoints are deleted, and WAL
// segments below the oldest retained checkpoint are removed.
func (d *Durability) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.checkpointLocked()
}

func (d *Durability) checkpointLocked() error {
	if d.closed {
		return fmt.Errorf("pphcr: checkpoint on closed durability")
	}
	var (
		buf bytes.Buffer
		seq int64
		err error
	)
	barrierStart := time.Now()
	d.sys.checkpointBarrier(func() {
		if err = d.sys.Snapshot(&buf); err != nil {
			return
		}
		seq, err = d.wal.Rotate()
	})
	paused := time.Since(barrierStart).Nanoseconds()
	d.lastBarrierNs.Store(paused)
	d.totalBarrierNs.Add(paused)
	d.pauseHist.ObserveNs(paused)
	if err == nil {
		err = durable.WriteCheckpoint(d.dir, seq, buf.Bytes())
	}
	if err != nil {
		d.checkpointErrs.Add(1)
		return fmt.Errorf("pphcr: checkpoint: %w", err)
	}
	d.checkpoints.Add(1)
	d.lastCheckpoint.Store(time.Now().UnixNano())
	kept, err := durable.RemoveCheckpointsKeep(d.dir, d.keep)
	if err != nil || len(kept) == 0 {
		return err
	}
	if d.retain {
		// RetainSegments: the full log is the rebalance source of truth;
		// keep every segment on disk.
		return nil
	}
	return d.wal.RemoveSegmentsBelow(kept[0].Seq)
}

// Close takes a final checkpoint (the shutdown flush) and closes the
// WAL. The System's hook is detached so late mutations fail fast
// instead of landing in a closed log.
func (d *Durability) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	err := d.checkpointLocked()
	d.closed = true
	d.sys.SetMutationHook(nil)
	if cerr := d.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash abandons the durability layer without flushing or
// checkpointing — the crash-simulation path used by recovery tests and
// the load generator's -restart workload. Buffered, unsynced WAL
// records are lost exactly as in a process kill.
func (d *Durability) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.closed = true
	d.sys.SetMutationHook(nil)
	d.wal.Abandon()
}

// DurabilityStats is the /stats view of the durability subsystem.
type DurabilityStats struct {
	WAL durable.WALStats `json:"wal"`
	// Replayed is the number of WAL records applied at startup.
	Replayed int `json:"replayed"`
	// RecoveredTorn reports whether startup found (and dropped) a torn
	// final record.
	RecoveredTorn bool `json:"recovered_torn,omitempty"`
	// Checkpoints / CheckpointErrors count checkpoint attempts since
	// open.
	Checkpoints      int64 `json:"checkpoints"`
	CheckpointErrors int64 `json:"checkpoint_errors"`
	// EmitErrors counts WAL-append failures on the write paths whose
	// signatures cannot propagate them (injection consumption, feedback
	// compaction). Nonzero means the log is missing events.
	EmitErrors int64 `json:"emit_errors"`
	// LastCheckpointUnix is when the newest checkpoint completed (0 =
	// never); LastCheckpointAgeSec is its age now.
	LastCheckpointUnix   int64   `json:"last_checkpoint_unix"`
	LastCheckpointAgeSec float64 `json:"last_checkpoint_age_sec"`
	// LastBarrierMicros / TotalBarrierMicros are the write-path pauses
	// the checkpoint quiesces imposed (snapshot + WAL rotation inside
	// the striped commit barrier); Pause is their distribution.
	LastBarrierMicros  float64     `json:"last_barrier_micros"`
	TotalBarrierMicros float64     `json:"total_barrier_micros"`
	Pause              obs.Summary `json:"pause"`
}

// Stats snapshots the durability counters.
func (d *Durability) Stats() DurabilityStats {
	st := DurabilityStats{
		WAL:                d.wal.Stats(),
		Replayed:           d.replayed,
		RecoveredTorn:      d.torn,
		Checkpoints:        d.checkpoints.Load(),
		CheckpointErrors:   d.checkpointErrs.Load(),
		EmitErrors:         d.sys.emitErrs.Load(),
		LastBarrierMicros:  float64(d.lastBarrierNs.Load()) / 1e3,
		TotalBarrierMicros: float64(d.totalBarrierNs.Load()) / 1e3,
		Pause:              d.pauseHist.Summary(),
	}
	if ns := d.lastCheckpoint.Load(); ns > 0 {
		st.LastCheckpointUnix = ns / 1e9
		st.LastCheckpointAgeSec = time.Since(time.Unix(0, ns)).Seconds()
	}
	return st
}

// WALSeq is the highest WAL sequence number handed out so far — an
// upper bound on the sequence of every write that has already returned.
// The HTTP layer stamps it on write responses (X-Pphcr-Wal-Seq) so a
// replication-aware router can hold the client ack until a follower has
// applied at least this far.
func (d *Durability) WALSeq() uint64 { return d.wal.SeqCeiling() }

// SyncWAL forces a group flush+fsync of everything appended so far. The
// replication source calls it before serving segment bytes under the
// interval/none sync policies, so a follower's cursor never runs ahead
// of what the leader has durably written.
func (d *Durability) SyncWAL() error { return d.wal.Sync() }

// ApplyReplicated applies one shipped WAL record through the entry
// point that emitted it on the leader. It is the warm-standby apply
// path: the System must have no mutation hook attached (nothing is
// re-logged; the follower's on-disk log is the shipped bytes
// themselves). The caller owns ordering — records must arrive in
// strictly ascending sequence order, because cross-user causality on
// the leader is only encoded in the sequence numbers, not the physical
// record order (see durable.Replay).
func (s *System) ApplyReplicated(e durable.Event) error {
	return s.applyDurableEvent(e)
}

// eventUserProbe matches the user field of every durable payload
// schema: the store types carry UserID (profile.Profile,
// feedback.Event), the thin argument records carry User.
type eventUserProbe struct {
	User   string
	UserID string
}

// EventUser extracts the user a durable event belongs to. ok is false
// for events that are not user-scoped (catalog ingest) — a rebalance
// replaying one user's history skips those, because every node ingests
// the same seeded catalog itself.
func EventUser(e durable.Event) (string, bool) {
	switch e.Type {
	case durable.TypeIngest:
		return "", false
	}
	var p eventUserProbe
	if err := json.Unmarshal(e.Payload, &p); err != nil {
		return "", false
	}
	if p.UserID != "" {
		return p.UserID, true
	}
	return p.User, p.User != ""
}

// PromoteStandby turns a warm standby into a leader. The System already
// holds live state from applying shipped records contiguously up to
// appliedSeq; promotion replays the local (shipped) log's remaining
// suffix — every record with a sequence above appliedSeq, in sequence
// order, including records the contiguous tail couldn't apply past a
// sequence gap — then opens the WAL for writing and attaches the
// mutation hook. From the moment it returns, the node acks its own
// writes. fromSeg bounds the replay to segments >= fromSeg (the
// standby's bootstrap checkpoint segment; 0 replays everything
// retained). The returned count is the number of suffix records
// applied — the acked-but-unapplied window the promotion closed.
func PromoteStandby(sys *System, o DurabilityOptions, fromSeg int64, appliedSeq uint64) (*Durability, int, error) {
	if o.Dir == "" {
		return nil, 0, fmt.Errorf("pphcr: DurabilityOptions.Dir required")
	}
	if o.KeepCheckpoints <= 0 {
		o.KeepCheckpoints = 2
	}
	d := &Durability{sys: sys, dir: o.Dir, keep: o.KeepCheckpoints, retain: o.RetainSegments, recovered: true}
	applied := 0
	st, err := durable.Replay(o.Dir, fromSeg, func(e durable.Event) error {
		if e.Seq <= appliedSeq {
			return nil // the standby applied this one live
		}
		applied++
		return sys.applyDurableEvent(e)
	})
	if err != nil {
		return nil, applied, fmt.Errorf("pphcr: promoting standby: %w", err)
	}
	d.replayed = applied
	d.torn = st.Torn
	initial := st.MaxSeq
	if appliedSeq > initial {
		initial = appliedSeq
	}
	wal, err := durable.OpenWAL(o.Dir, durable.Options{
		SegmentBytes: o.SegmentBytes,
		Sync:         o.Sync,
		SyncEvery:    o.SyncEvery,
		Stripes:      len(sys.shards),
		InitialSeq:   initial,
	})
	if err != nil {
		return nil, applied, err
	}
	d.wal = wal
	sys.SetMutationHook(wal.AppendTo)
	return d, applied, nil
}
