package pphcr

import (
	"testing"
	"time"

	"pphcr/internal/plancache"
	"pphcr/internal/predict"
	"pphcr/internal/synth"
	"pphcr/internal/trajectory"
)

// newWarmableSystem builds a system that can produce non-empty proactive
// plans: a candidate corpus dense enough to cover the persona's interest
// categories inside the 72 h window, plus a compacted commute history.
func newWarmableSystem(t testing.TB) (*System, *synth.World, string) {
	t.Helper()
	w, err := synth.GenerateWorld(synth.Params{
		Seed: 21, Days: 5, Users: 2, Stations: 2, PodcastsPerDay: 40,
		TrainingDocsPerCategory: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{TrainingDocs: w.Training, Vocabulary: w.FlatVocab})
	if err != nil {
		t.Fatal(err)
	}
	persona := w.Personas[0]
	user := persona.Profile.UserID
	if err := sys.RegisterUser(persona.Profile); err != nil {
		t.Fatal(err)
	}
	for _, raw := range w.Corpus {
		if _, err := sys.IngestPodcast(raw); err != nil {
			t.Fatal(err)
		}
	}
	for d := 0; d < w.Params.Days; d++ {
		day := w.Params.StartDate.AddDate(0, 0, d)
		if wd := day.Weekday(); wd == time.Saturday || wd == time.Sunday {
			continue
		}
		for _, morning := range []bool{true, false} {
			trace, _, err := w.CommuteTrace(persona, day, morning)
			if err != nil {
				t.Fatal(err)
			}
			for _, fix := range trace {
				if err := sys.RecordFix(user, fix); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if _, err := sys.CompactTracking(user); err != nil {
		t.Fatal(err)
	}
	return sys, w, user
}

// commutePartial returns the first `window` of a future Monday's morning
// commute (dayOffset days after the world start, expected to land on a
// weekday) and the planning instant at its end.
func commutePartial(t testing.TB, w *synth.World, window time.Duration, dayOffset int) (trajectory.Trace, time.Time) {
	t.Helper()
	day := w.Params.StartDate.AddDate(0, 0, dayOffset)
	full, _, err := w.CommuteTrace(w.Personas[0], day, true)
	if err != nil {
		t.Fatal(err)
	}
	var partial trajectory.Trace
	for _, fix := range full {
		if fix.Time.Sub(full[0].Time) > window {
			break
		}
		partial = append(partial, fix)
	}
	return partial, partial[len(partial)-1].Time
}

// TestPlanTripColdWarmEquivalence is the cache-correctness contract:
// identical inputs must yield an identical schedule whether the plan is
// computed cold or served from the warm cache.
func TestPlanTripColdWarmEquivalence(t *testing.T) {
	sys, w, user := newWarmableSystem(t)
	partial, now := commutePartial(t, w, 3*time.Minute, 7)

	cold, err := sys.PlanTrip(user, partial, now, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Source != PlanSourceCold {
		t.Fatalf("first plan source = %q, want cold", cold.Source)
	}
	if !cold.Proactive || len(cold.Plan.Items) == 0 {
		t.Fatalf("cold plan unusable: proactive=%v items=%d reason=%q",
			cold.Proactive, len(cold.Plan.Items), cold.Reason)
	}

	warm, err := sys.PlanTrip(user, partial, now, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Source != PlanSourceWarm {
		t.Fatalf("second plan source = %q, want warm", warm.Source)
	}
	if len(warm.Plan.Items) != len(cold.Plan.Items) {
		t.Fatalf("warm items = %d, cold = %d", len(warm.Plan.Items), len(cold.Plan.Items))
	}
	for i := range warm.Plan.Items {
		wi, ci := warm.Plan.Items[i], cold.Plan.Items[i]
		if wi.Scored.Item.ID != ci.Scored.Item.ID || wi.StartOffset != ci.StartOffset {
			t.Fatalf("item %d differs: warm=%+v cold=%+v", i, wi, ci)
		}
	}
	if warm.Plan.TotalValue != cold.Plan.TotalValue || warm.Plan.Used != cold.Plan.Used {
		t.Fatalf("plan aggregates differ: warm=(%v,%v) cold=(%v,%v)",
			warm.Plan.TotalValue, warm.Plan.Used, cold.Plan.TotalValue, cold.Plan.Used)
	}
	// The live prediction and context are always fresh, even on warm serves.
	if warm.Prediction.Dest != cold.Prediction.Dest {
		t.Fatalf("warm destination %d != cold %d", warm.Prediction.Dest, cold.Prediction.Dest)
	}
	if st := sys.PlanCache.Stats(); st.Hits < 1 {
		t.Fatalf("no cache hit recorded: %+v", st)
	}
}

// TestWarmPlanServesLiveRequest drives the precompute flow end to end at
// the System level: WarmPlan anticipates the trip before it starts, and
// the live PlanTrip shortly after departure is served from that entry.
func TestWarmPlanServesLiveRequest(t *testing.T) {
	sys, w, user := newWarmableSystem(t)
	// Short partial: the live request arrives one minute into the trip,
	// well inside the median−MAD slack the warm plan leaves.
	partial, now := commutePartial(t, w, time.Minute, 7)

	cm, _ := sys.MobilityModel(user)
	m := cm.Mobility
	from := m.MatchPlace(partial[0].Point)
	if from == predict.NoPlace {
		t.Fatal("trip origin not matched")
	}
	cands := m.PredictDestination(from, partial[0].Time)
	if len(cands) == 0 {
		t.Fatal("no destination candidates")
	}
	tp, err := sys.WarmPlan(user, from, cands[0].Place, cands[0].Prob, partial[0].Time)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Proactive || len(tp.Plan.Items) == 0 {
		t.Fatalf("warm plan unusable: proactive=%v items=%d reason=%q",
			tp.Proactive, len(tp.Plan.Items), tp.Reason)
	}
	if !sys.PlanCache.Contains(plancache.Key{
		User: user, Dest: cands[0].Place, Bucket: predict.BucketOf(partial[0].Time),
	}) {
		t.Fatal("warm plan not cached")
	}

	live, err := sys.PlanTrip(user, partial, now, nil)
	if err != nil {
		t.Fatal(err)
	}
	if live.Source != PlanSourceWarm {
		t.Fatalf("live plan source = %q, want warm (deltaT=%v reason=%q)",
			live.Source, live.Prediction.DeltaT, live.Reason)
	}
	// Served items must still fit the live remaining time.
	for _, it := range live.Plan.Items {
		if it.StartOffset+it.Scored.Item.Duration > live.Prediction.DeltaT {
			t.Fatalf("warm item overruns live ΔT: %+v vs %v", it, live.Prediction.DeltaT)
		}
	}
}

// TestWarmPlanNeverOverridesLiveDecline: phase 1 runs live on every
// request — a warm entry must not be served when the current situation
// (here: too little ΔT remaining) would make the cold path decline.
func TestWarmPlanNeverOverridesLiveDecline(t *testing.T) {
	sys, w, user := newWarmableSystem(t)
	partial, now := commutePartial(t, w, 3*time.Minute, 7)
	tp, err := sys.PlanTrip(user, partial, now, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Proactive {
		t.Fatalf("priming plan not proactive: %q", tp.Reason)
	}
	// 20 minutes into a ~25-minute commute: ΔT is below the planner's
	// 8-minute minimum, so phase 1 must decline despite the warm entry.
	late := partial[0].Time.Add(20 * time.Minute)
	tp2, err := sys.PlanTrip(user, partial, late, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tp2.Source == PlanSourceWarm {
		t.Fatalf("warm plan served past a live phase-1 decline (ΔT=%v)", tp2.Prediction.DeltaT)
	}
	if tp2.Proactive {
		t.Fatalf("late-trip plan proactive with ΔT=%v", tp2.Prediction.DeltaT)
	}
}

// TestWarmPlanInvalidation pins the three invalidation rules at the
// System level.
func TestWarmPlanInvalidation(t *testing.T) {
	sys, w, user := newWarmableSystem(t)
	partial, now := commutePartial(t, w, 3*time.Minute, 7)
	if _, err := sys.PlanTrip(user, partial, now, nil); err != nil {
		t.Fatal(err)
	}
	if sys.PlanCache.Len() == 0 {
		t.Fatal("plan not cached")
	}
	// Rule 1: re-compaction renumbers places → user's entries must die.
	if _, err := sys.CompactTracking(user); err != nil {
		t.Fatal(err)
	}
	if sys.PlanCache.Len() != 0 {
		t.Fatal("entries survived re-compaction")
	}
	// Re-prime, then rule 2: new content marks everything stale.
	if _, err := sys.PlanTrip(user, partial, now, nil); err != nil {
		t.Fatal(err)
	}
	fresh := w.Corpus[0]
	fresh.ID = "pod-fresh"
	if _, err := sys.IngestPodcast(fresh); err != nil {
		t.Fatal(err)
	}
	tp, err := sys.PlanTrip(user, partial, now, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Source != PlanSourceCold {
		t.Fatalf("post-ingest source = %q, want cold", tp.Source)
	}
}

// TestWarmPlanStaleInLogicalTime: callers drive PlanTrip with simulated
// clocks, so freshness must be judged against the request's `now`, not
// the process clock — the same commute one simulated week later must
// replan cold even though the wall-clock TTL has not elapsed.
func TestWarmPlanStaleInLogicalTime(t *testing.T) {
	sys, w, user := newWarmableSystem(t)
	partial, now := commutePartial(t, w, 3*time.Minute, 7)
	tp, err := sys.PlanTrip(user, partial, now, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Proactive || tp.Source != PlanSourceCold {
		t.Fatalf("priming plan: proactive=%v source=%q", tp.Proactive, tp.Source)
	}
	// Same commute, same time bucket, next Monday: the cached plan is a
	// week old in world time and must not be served.
	partial2, now2 := commutePartial(t, w, 3*time.Minute, 14)
	tp2, err := sys.PlanTrip(user, partial2, now2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tp2.Source == PlanSourceWarm {
		t.Fatal("week-old plan served warm across simulated time")
	}
}
