package pphcr

import (
	"errors"
	"testing"
	"time"

	"pphcr/internal/feedback"
	"pphcr/internal/profile"
	"pphcr/internal/radiodns"
	"pphcr/internal/recommend"
)

// skipFixture builds a system with content and one service with a
// program on air.
func skipFixture(t *testing.T) (*System, time.Time) {
	sys, w := newTestSystem(t)
	var newest time.Time
	for _, raw := range w.Corpus {
		if _, err := sys.IngestPodcast(raw); err != nil {
			t.Fatal(err)
		}
		if raw.Published.After(newest) {
			newest = raw.Published
		}
	}
	now := newest.Add(time.Hour)
	if err := sys.Directory.AddService(&radiodns.Service{
		ID: "radio1", Name: "R1", GCC: "5e0", PI: "5201", Frequency: 8990,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Directory.AddProgram(&radiodns.Program{
		ID: "football-talk", ServiceID: "radio1", Title: "Endless football talk",
		Start: now.Add(-10 * time.Minute), Duration: time.Hour,
		Categories:  map[string]float64{"sport": 1},
		Replaceable: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterUser(profile.Profile{
		UserID: "greg", Interests: []string{"technology", "economics"},
	}); err != nil {
		t.Fatal(err)
	}
	return sys, now
}

func TestSkipLiveRecordsFeedbackAndRecommends(t *testing.T) {
	sys, now := skipFixture(t)
	ctx := recommend.Context{Now: now}
	sc, err := sys.SkipLive("greg", "radio1", ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The skip landed against the on-air program with its categories.
	events := sys.Feedback.ByUser("greg")
	if len(events) != 1 || events[0].Kind != feedback.Skip || events[0].ItemID != "football-talk" {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Categories["sport"] != 1 {
		t.Fatal("program categories not denormalized")
	}
	// The replacement matches Greg's interests.
	top := sc.Item.TopCategory()
	if top != "technology" && top != "economics" {
		t.Fatalf("replacement category = %q", top)
	}
	// The skip feedback immediately depresses sport in the preferences.
	if prefs := sys.Preferences("greg", now); prefs["sport"] >= 0 {
		t.Fatalf("sport pref = %v after skip", prefs["sport"])
	}
}

func TestSkipClipWalksDownTheList(t *testing.T) {
	sys, now := skipFixture(t)
	ctx := recommend.Context{Now: now}
	// An established taste: a few likes so that single skips cannot drive
	// whole categories negative (a skip outweighs the 0.5 seed alone).
	for _, cat := range []string{"technology", "economics"} {
		for i, it := range sys.Repo.ByCategory(cat) {
			if i >= 3 {
				break
			}
			if err := sys.AddFeedback(feedback.Event{
				UserID: "greg", ItemID: it.ID, Kind: feedback.Like,
				At: now.Add(-2 * time.Hour), Categories: it.Categories,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	first, err := sys.SkipLive("greg", "radio1", ctx)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sys.SkipClip("greg", first.Item.ID, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if second.Item.ID == first.Item.ID {
		t.Fatal("skip returned the same item")
	}
	third, err := sys.SkipClip("greg", second.Item.ID, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if third.Item.ID == first.Item.ID || third.Item.ID == second.Item.ID {
		t.Fatal("skipped item returned again")
	}
}

func TestSkipLiveNoSchedule(t *testing.T) {
	sys, now := skipFixture(t)
	// Unknown service: no program feedback, but a recommendation still
	// comes back (the user zapped from an unmanaged tuner).
	sc, err := sys.SkipLive("greg", "ghost-service", recommend.Context{Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Item == nil {
		t.Fatal("no recommendation")
	}
	if len(sys.Feedback.ByUser("greg")) != 0 {
		t.Fatal("feedback recorded for unknown program")
	}
}

func TestSkipExhaustsAlternatives(t *testing.T) {
	sys, w := newTestSystem(t)
	_ = w
	if err := sys.RegisterUser(profile.Profile{UserID: "u", Interests: []string{"food"}}); err != nil {
		t.Fatal(err)
	}
	// Empty repository: nothing to recommend.
	_, err := sys.SkipLive("u", "radio1", recommend.Context{Now: time.Now()})
	if !errors.Is(err, ErrNoAlternative) {
		t.Fatalf("err = %v, want ErrNoAlternative", err)
	}
}
