package pphcr

import (
	"testing"
	"time"

	"pphcr/internal/feedback"
	"pphcr/internal/geo"
	"pphcr/internal/profile"
	"pphcr/internal/recommend"
	"pphcr/internal/synth"
	"pphcr/internal/trajectory"
)

// newTestSystem builds a System over a small synthetic world.
func newTestSystem(t testing.TB) (*System, *synth.World) {
	t.Helper()
	w, err := synth.GenerateWorld(synth.Params{
		Seed: 11, Days: 5, Users: 3, Stations: 3, PodcastsPerDay: 30,
		TrainingDocsPerCategory: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{
		TrainingDocs: w.Training,
		Vocabulary:   w.FlatVocab,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, w
}

func TestNewRequiresTraining(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing training docs accepted")
	}
	if _, err := New(Config{TrainingDocs: nil, ASRWordErrorRate: 2}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestIngestAndRecommendFlow(t *testing.T) {
	sys, w := newTestSystem(t)
	// Subscribe to broker events before acting.
	q, err := sys.Broker.Bind("audit", "#")
	if err != nil {
		t.Fatal(err)
	}
	persona := w.Personas[0]
	if err := sys.RegisterUser(persona.Profile); err != nil {
		t.Fatal(err)
	}
	var lastPublished time.Time
	for _, raw := range w.Corpus {
		if _, err := sys.IngestPodcast(raw); err != nil {
			t.Fatal(err)
		}
		if raw.Published.After(lastPublished) {
			lastPublished = raw.Published
		}
	}
	if sys.Repo.Len() != len(w.Corpus) {
		t.Fatalf("repo has %d items, want %d", sys.Repo.Len(), len(w.Corpus))
	}
	now := lastPublished.Add(time.Hour)

	// Seed interests alone must already personalize the cold-start list.
	ranked := sys.Recommend(persona.Profile.UserID, recommend.Context{Now: now}, 10)
	if len(ranked) == 0 {
		t.Fatal("cold-start recommendations empty")
	}
	interests := map[string]bool{}
	for _, c := range persona.Profile.Interests {
		interests[c] = true
	}
	if !interests[ranked[0].Item.TopCategory()] {
		t.Fatalf("top recommendation %q not in interests %v",
			ranked[0].Item.TopCategory(), persona.Profile.Interests)
	}
	// Events flowed through the broker.
	if q.Len() == 0 {
		t.Fatal("no broker events published")
	}
}

func TestFeedbackShiftsRecommendations(t *testing.T) {
	sys, w := newTestSystem(t)
	user := "greg"
	if err := sys.RegisterUser(profile.Profile{UserID: user, Interests: []string{"technology"}}); err != nil {
		t.Fatal(err)
	}
	var lastPublished time.Time
	for _, raw := range w.Corpus {
		if _, err := sys.IngestPodcast(raw); err != nil {
			t.Fatal(err)
		}
		if raw.Published.After(lastPublished) {
			lastPublished = raw.Published
		}
	}
	now := lastPublished.Add(time.Hour)
	// Greg skips every sport item hard and likes food.
	for _, it := range sys.Repo.ByCategory("sport") {
		if err := sys.AddFeedback(feedback.Event{
			UserID: user, ItemID: it.ID, Kind: feedback.Dislike, At: now.Add(-time.Hour),
			Categories: it.Categories,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i, it := range sys.Repo.ByCategory("food") {
		if i >= 5 {
			break
		}
		if err := sys.AddFeedback(feedback.Event{
			UserID: user, ItemID: it.ID, Kind: feedback.Like, At: now.Add(-time.Hour),
			Categories: it.Categories,
		}); err != nil {
			t.Fatal(err)
		}
	}
	prefs := sys.Preferences(user, now)
	if prefs["sport"] >= 0 {
		t.Fatalf("sport preference = %v, want negative", prefs["sport"])
	}
	if prefs["food"] <= 0 {
		t.Fatalf("food preference = %v, want positive", prefs["food"])
	}
	ranked := sys.Recommend(user, recommend.Context{Now: now}, 20)
	for _, sc := range ranked {
		if sc.Item.TopCategory() == "sport" {
			t.Fatal("disliked category still recommended")
		}
	}
}

func TestInjectPinsAndClears(t *testing.T) {
	sys, w := newTestSystem(t)
	user := "editor-target"
	if err := sys.RegisterUser(profile.Profile{UserID: user, Interests: []string{"music"}}); err != nil {
		t.Fatal(err)
	}
	var anyID string
	var lastPublished time.Time
	for _, raw := range w.Corpus {
		it, err := sys.IngestPodcast(raw)
		if err != nil {
			t.Fatal(err)
		}
		anyID = it.ID
		if raw.Published.After(lastPublished) {
			lastPublished = raw.Published
		}
	}
	if err := sys.Inject(user, "missing"); err == nil {
		t.Fatal("injecting unknown item accepted")
	}
	if err := sys.Inject(user, anyID); err != nil {
		t.Fatal(err)
	}
	if got := sys.PendingInjections(user); len(got) != 1 || got[0] != anyID {
		t.Fatalf("pending = %v", got)
	}
	now := lastPublished.Add(time.Hour)
	ranked := sys.Recommend(user, recommend.Context{Now: now}, 5)
	if len(ranked) == 0 || ranked[0].Item.ID != anyID {
		t.Fatalf("injected item not pinned first: %+v", ranked)
	}
	if ranked[0].Compound != 1 {
		t.Fatalf("pinned compound = %v", ranked[0].Compound)
	}
	// Inject-once: next call has no pin.
	if got := sys.PendingInjections(user); len(got) != 0 {
		t.Fatalf("pending after recommend = %v", got)
	}
}

func TestPlanTripEndToEnd(t *testing.T) {
	sys, w := newTestSystem(t)
	persona := w.Personas[0]
	user := persona.Profile.UserID
	if err := sys.RegisterUser(persona.Profile); err != nil {
		t.Fatal(err)
	}
	for _, raw := range w.Corpus {
		if _, err := sys.IngestPodcast(raw); err != nil {
			t.Fatal(err)
		}
	}
	// Record 5 weekdays of commutes, then compact.
	for d := 0; d < 5; d++ {
		day := w.Params.StartDate.AddDate(0, 0, d)
		if wd := day.Weekday(); wd == time.Saturday || wd == time.Sunday {
			continue
		}
		for _, morning := range []bool{true, false} {
			trace, _, err := w.CommuteTrace(persona, day, morning)
			if err != nil {
				t.Fatal(err)
			}
			for _, fix := range trace {
				if err := sys.RecordFix(user, fix); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if _, err := sys.CompactTracking(user); err != nil {
		t.Fatal(err)
	}
	// A new morning commute begins (next Monday).
	day := w.Params.StartDate.AddDate(0, 0, 7)
	trace, _, err := w.CommuteTrace(persona, day, true)
	if err != nil {
		t.Fatal(err)
	}
	// First 5 minutes of driving observed.
	var partial trajectory.Trace
	for _, fix := range trace {
		if fix.Time.Sub(trace[0].Time) > 5*time.Minute {
			break
		}
		partial = append(partial, fix)
	}
	now := partial[len(partial)-1].Time
	tp, err := sys.PlanTrip(user, partial, now, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Prediction.Dest == -1 {
		t.Fatal("no destination predicted")
	}
	if !tp.Proactive {
		// ΔT can legitimately be short for close commutes; only fail when
		// the reason is unexpected.
		t.Logf("not proactive: %s (ΔT=%v conf=%v)", tp.Reason, tp.Prediction.DeltaT, tp.Prediction.Confidence)
	} else {
		if len(tp.Plan.Items) == 0 {
			t.Fatal("proactive but empty plan")
		}
		if tp.Plan.Used > tp.Prediction.DeltaT {
			t.Fatal("plan exceeds predicted ΔT")
		}
	}
}

func TestPlanTripErrors(t *testing.T) {
	sys, _ := newTestSystem(t)
	fix := trajectory.Fix{Point: geo.Point{Lat: 45.07, Lon: 7.68}, Time: time.Now()}
	if _, err := sys.PlanTrip("unknown", trajectory.Trace{fix}, time.Now(), nil); err == nil {
		t.Fatal("missing mobility model accepted")
	}
}

func TestCandidateWindowFiltersOldItems(t *testing.T) {
	sys, w := newTestSystem(t)
	for _, raw := range w.Corpus {
		if _, err := sys.IngestPodcast(raw); err != nil {
			t.Fatal(err)
		}
	}
	// Far future: nothing inside the 72 h window.
	farFuture := w.Params.StartDate.AddDate(1, 0, 0)
	if got := sys.Candidates(farFuture); len(got) != 0 {
		t.Fatalf("stale candidates: %d", len(got))
	}
	// Just after the last day: recent items visible.
	recent := w.Params.StartDate.AddDate(0, 0, w.Params.Days)
	if got := sys.Candidates(recent); len(got) == 0 {
		t.Fatal("no recent candidates")
	}
}
