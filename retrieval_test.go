package pphcr

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"pphcr/internal/ann"
	"pphcr/internal/content"
	"pphcr/internal/durable"
	"pphcr/internal/embed"
	"pphcr/internal/profile"
	"pphcr/internal/recommend"
	"pphcr/internal/synth"
)

// retrievalWorld pairs two Systems over the SAME catalog pointers: one
// on the exact window-scan Candidates stage, one on the ANN stage. The
// tiny synth world exists only to satisfy New's training-doc
// requirement; the catalog itself is generated directly so its size is
// controlled (retrievalCatalogSize — see retrieval_scale_*.go).
type retrievalWorld struct {
	exact  *System
	approx *System
	users  []string
	base   time.Time
	// off de-collides the (user, instant) warm-cache key across the
	// tests and benchmarks sharing this world: every Recommend call
	// takes a fresh offset so no call is ever warm-served.
	off int64
}

// next returns a unique query instant. The catalog is published inside
// the 4 h before base and the candidate window is days wide, so small
// forward offsets never change candidate membership.
func (w *retrievalWorld) next() time.Time {
	w.off++
	return w.base.Add(time.Duration(w.off) * time.Millisecond)
}

func buildRetrievalWorld(n, retrieve, users int) (*retrievalWorld, error) {
	sw, err := synth.GenerateWorld(synth.Params{
		Seed: 7, Days: 1, Users: 1, Stations: 1, PodcastsPerDay: 1,
		TrainingDocsPerCategory: 2,
	})
	if err != nil {
		return nil, err
	}
	cfg := Config{TrainingDocs: sw.Training, Vocabulary: sw.FlatVocab, Seed: 7}
	exact, err := New(cfg)
	if err != nil {
		return nil, err
	}
	acfg := cfg
	acfg.ANNCandidates = true
	acfg.ANNRetrieve = retrieve
	// Recall probes brute-scan the whole index; park them far out so the
	// speedup measurements time only the production search path.
	acfg.ANNProbeEvery = 1 << 20
	approx, err := New(acfg)
	if err != nil {
		return nil, err
	}

	w := &retrievalWorld{exact: exact, approx: approx,
		base: time.Date(2026, 3, 2, 12, 0, 0, 0, time.UTC)}
	rng := rand.New(rand.NewSource(7))
	span := 4 * time.Hour
	for i := 0; i < n; i++ {
		nc := 2 + rng.Intn(3)
		cats := make(map[string]float64, nc)
		total := 0.0
		for len(cats) < nc {
			c := content.Categories[rng.Intn(len(content.Categories))]
			if _, dup := cats[c]; dup {
				continue
			}
			cw := 0.2 + rng.Float64()
			cats[c] = cw
			total += cw
		}
		for c := range cats {
			cats[c] /= total
		}
		it := &content.Item{
			ID:       fmt.Sprintf("cat-%06d", i),
			Title:    fmt.Sprintf("bench item %d", i),
			Program:  "bench",
			Kind:     content.KindClip,
			Duration: 4 * time.Minute,
			// Publish inside a narrow 4 h span so freshness decay is near
			// uniform across the catalog and embedding similarity is the
			// deciding ranking signal.
			Published:   w.base.Add(-span + time.Duration(int64(i)*int64(span)/int64(n))),
			Categories:  cats,
			BitrateKbps: 96,
		}
		if err := exact.Repo.Add(it); err != nil {
			return nil, err
		}
		if err := approx.Repo.Add(it); err != nil {
			return nil, err
		}
	}
	for u := 0; u < users; u++ {
		id := fmt.Sprintf("bench-user-%02d", u)
		nc := len(content.Categories)
		p := profile.Profile{UserID: id, Interests: []string{
			content.Categories[(u*5)%nc],
			content.Categories[(u*5+1)%nc],
			content.Categories[(u*5+2)%nc],
		}}
		if err := exact.RegisterUser(p); err != nil {
			return nil, err
		}
		if err := approx.RegisterUser(p); err != nil {
			return nil, err
		}
		w.users = append(w.users, id)
	}
	return w, nil
}

// The full-size world is expensive (HNSW build over retrievalCatalogSize
// items), so the speedup test and both benchmarks share one instance.
var (
	retrievalOnce   sync.Once
	retrievalErr    error
	retrievalShared *retrievalWorld
)

func retrievalBenchWorld(t testing.TB) *retrievalWorld {
	t.Helper()
	retrievalOnce.Do(func() {
		retrievalShared, retrievalErr = buildRetrievalWorld(retrievalCatalogSize, 512, 16)
	})
	if retrievalErr != nil {
		t.Fatal(retrievalErr)
	}
	return retrievalShared
}

// TestANNEquivalenceSmallCatalog pins the exactness contract: with the
// retrieve budget at or above the catalog size, ann.Index.Search
// degrades to a brute scan, the ANN stage retrieves the entire window,
// and plans are byte-identical to the exact stage for every user and k.
func TestANNEquivalenceSmallCatalog(t *testing.T) {
	w, err := buildRetrievalWorld(400, 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{5, 25} {
		for _, u := range w.users {
			now := w.next()
			want := w.exact.Recommend(u, recommend.Context{Now: now}, k)
			got := w.approx.Recommend(u, recommend.Context{Now: now}, k)
			if len(want) == 0 {
				t.Fatalf("exact stage returned nothing for %s k=%d", u, k)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s k=%d: ANN plan diverges from exact\n ann:   %v\n exact: %v",
					u, k, planIDs(got), planIDs(want))
			}
		}
	}
	_, ix, ok := w.approx.RetrievalStats()
	if !ok {
		t.Fatal("retrieval stats unavailable on ANN system")
	}
	if ix.Searches == 0 || ix.Brute != ix.Searches {
		t.Fatalf("expected every search to take the exact-degradation path: brute=%d searches=%d",
			ix.Brute, ix.Searches)
	}
}

func planIDs(ranked []recommend.Scored) []string {
	ids := make([]string, len(ranked))
	for i, s := range ranked {
		ids[i] = s.Item.ID
	}
	return ids
}

// TestANNSpeedupAndRecall is the acceptance gate at scale: over a
// retrievalCatalogSize-item catalog the ANN stage must produce ≥95 %
// of the exact stage's top-10 (mean over users) while answering at
// least retrievalSpeedupFloor× faster end to end.
func TestANNSpeedupAndRecall(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size retrieval world")
	}
	w := retrievalBenchWorld(t)

	// Recall first — this pass also warms both systems' model caches so
	// the timed sweeps below compare steady-state paths.
	var overlapSum float64
	for _, u := range w.users {
		now := w.next()
		exactTop := w.exact.Recommend(u, recommend.Context{Now: now}, 10)
		annTop := w.approx.Recommend(u, recommend.Context{Now: now}, 10)
		if len(exactTop) == 0 {
			t.Fatalf("exact stage returned nothing for %s", u)
		}
		ids := make(map[string]bool, len(exactTop))
		for _, s := range exactTop {
			ids[s.Item.ID] = true
		}
		hit := 0
		for _, s := range annTop {
			if ids[s.Item.ID] {
				hit++
			}
		}
		overlapSum += float64(hit) / float64(len(exactTop))
	}
	recall := overlapSum / float64(len(w.users))
	if recall < 0.95 {
		t.Fatalf("recall@10 = %.3f, want ≥ 0.95", recall)
	}

	const reps = 2
	sweep := func(sys *System) time.Duration {
		start := time.Now()
		for r := 0; r < reps; r++ {
			for _, u := range w.users {
				if got := sys.Recommend(u, recommend.Context{Now: w.next()}, 10); len(got) == 0 {
					t.Fatalf("empty plan for %s", u)
				}
			}
		}
		return time.Since(start)
	}
	exactTotal := sweep(w.exact)
	annTotal := sweep(w.approx)
	speedup := float64(exactTotal) / float64(annTotal)
	t.Logf("catalog=%d recall@10=%.3f exact=%v ann=%v speedup=%.1fx (floor %.0fx)",
		retrievalCatalogSize, recall, exactTotal, annTotal, speedup, retrievalSpeedupFloor)
	if speedup < retrievalSpeedupFloor {
		t.Fatalf("ANN stage only %.2fx faster than exact (exact=%v ann=%v), want ≥ %.0fx",
			speedup, exactTotal, annTotal, retrievalSpeedupFloor)
	}
}

// TestANNCrashRecoveryRebuildsIndex proves the vector index is derived
// state: after a crash, recovery (snapshot restore + WAL replay) feeds
// every item back through Repository.Add, and the rebuilt index holds
// exactly the vectors an oracle index built from the recovered catalog
// holds — no snapshot format change, nothing index-specific persisted.
func TestANNCrashRecoveryRebuildsIndex(t *testing.T) {
	sw, err := synth.GenerateWorld(synth.Params{
		Seed: 11, Days: 3, Users: 2, Stations: 2, PodcastsPerDay: 20,
		TrainingDocsPerCategory: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{TrainingDocs: sw.Training, Vocabulary: sw.FlatVocab, Seed: 11,
		ANNCandidates: true, ANNRetrieve: 64}

	dir := t.TempDir()
	live, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dur, err := OpenDurability(live, DurabilityOptions{Dir: dir, Sync: durable.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i, raw := range sw.Corpus {
		if _, err := live.IngestPodcast(raw); err != nil {
			t.Fatal(err)
		}
		if i == len(sw.Corpus)/2 {
			if err := dur.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if live.ANNIndex().Len() != live.Repo.Len() {
		t.Fatalf("live index %d items, repo %d", live.ANNIndex().Len(), live.Repo.Len())
	}
	dur.Crash()

	recovered, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rdur, err := OpenDurability(recovered, DurabilityOptions{Dir: dir, Sync: durable.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer rdur.Close()
	if !rdur.Recovered() {
		t.Fatal("no recovered state")
	}

	n := recovered.Repo.Len()
	if n != len(sw.Corpus) {
		t.Fatalf("recovered %d items, ingested %d", n, len(sw.Corpus))
	}
	ix := recovered.ANNIndex()
	if ix.Len() != n {
		t.Fatalf("recovered index holds %d items, repo %d", ix.Len(), n)
	}
	wantIDs := make([]string, 0, n)
	for _, it := range recovered.Repo.All() {
		wantIDs = append(wantIDs, it.ID)
	}
	sort.Strings(wantIDs)
	if gotIDs := ix.IDs(); !reflect.DeepEqual(gotIDs, wantIDs) {
		t.Fatalf("index IDs diverge from repo: %d vs %d entries", len(gotIDs), len(wantIDs))
	}

	// Vector-level equality: a brute scan ranks by stored quantized
	// vectors only, so identical full rankings across several query
	// directions prove the rebuilt index stored the oracle's vectors.
	oracle := ann.New(ann.Config{Seed: cfg.Seed})
	for _, it := range recovered.Repo.All() {
		oracle.Insert(it)
	}
	for _, cat := range []string{"sport", "music", "technology"} {
		v, ok := embed.QueryVector(map[string]float64{cat: 1})
		if !ok {
			t.Fatalf("no query vector for %q", cat)
		}
		q := embed.Quantize(&v)
		got := ix.BruteSearch(&q, n)
		want := oracle.BruteSearch(&q, n)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("brute ranking for %q diverges between recovered index and oracle", cat)
		}
	}
}

// BenchmarkCandidateExact and BenchmarkCandidateANN are the paired
// acceptance benchmarks (benchjson highlights candidate_exact_ns /
// candidate_ann_ns and derives ann_speedup_x): one full Recommend over
// the shared retrievalCatalogSize-item catalog, exact scan vs HNSW.
func BenchmarkCandidateExact(b *testing.B) {
	w := retrievalBenchWorld(b)
	w.exact.Recommend(w.users[0], recommend.Context{Now: w.next()}, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.exact.Recommend(w.users[i%len(w.users)], recommend.Context{Now: w.next()}, 10)
	}
}

func BenchmarkCandidateANN(b *testing.B) {
	w := retrievalBenchWorld(b)
	// Measured recall rides along with the timing so the bench gate can
	// assert both sides of the trade (ann_recall_at_k highlight).
	var overlapSum float64
	for _, u := range w.users {
		now := w.next()
		exactTop := planIDs(w.exact.Recommend(u, recommend.Context{Now: now}, 10))
		annTop := planIDs(w.approx.Recommend(u, recommend.Context{Now: now}, 10))
		ids := make(map[string]bool, len(exactTop))
		for _, id := range exactTop {
			ids[id] = true
		}
		hit := 0
		for _, id := range annTop {
			if ids[id] {
				hit++
			}
		}
		if len(exactTop) > 0 {
			overlapSum += float64(hit) / float64(len(exactTop))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.approx.Recommend(w.users[i%len(w.users)], recommend.Context{Now: w.next()}, 10)
	}
	b.StopTimer()
	b.ReportMetric(overlapSum/float64(len(w.users)), "recall-at-k")
}
